//! The request/response serving engine: the crate's primary public API.
//!
//! The paper's thesis is that the choice of exact-MIPS strategy should be
//! made at serving time by an optimizer. The engine packages that thesis
//! behind one facade:
//!
//! * [`EngineBuilder`] assembles a model, a set of backends from an open
//!   [`registry`](BackendRegistry) (brute force, MAXIMUS, LEMP, FEXIPRO,
//!   or anything implementing [`SolverFactory`]), and
//!   [`EngineOptions`] — including the multi-core serving degree.
//! * [`QueryRequest`] describes one unit of work: `k`, a user selection
//!   (everyone / a range / an explicit id list), and optional per-user
//!   item exclusions for the recommender scenario.
//! * Every entry point returns `Result<_, MipsError>`: malformed requests
//!   (`k == 0`, `k > num_items`, out-of-range users, empty selections) are
//!   typed errors, never panics.
//! * [`Engine::prepare`] runs the OPTIMUS planner once and caches the
//!   winning backend in a [`PreparedPlan`]; [`Engine::execute`] does this
//!   transparently, so repeated requests at the same `k` never re-sample.
//! * [`Engine::swap_model`] installs a retrained model atomically while the
//!   engine keeps serving: each request snapshots one model *epoch* on
//!   entry and runs against it end to end, so in-flight requests finish
//!   bit-identically on the epoch they started under while new submissions
//!   see the new model. Every derived structure (built indexes, cached
//!   plans) is epoch-scoped and reclaimed when the last in-flight request
//!   of an old epoch completes.
//!
//! ```
//! use mips_core::engine::{EngineBuilder, QueryRequest};
//! use mips_data::synth::{synth_model, SynthConfig};
//! use std::sync::Arc;
//!
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 60,
//!     num_items: 120,
//!     num_factors: 8,
//!     ..SynthConfig::default()
//! }));
//! let engine = EngineBuilder::new()
//!     .model(model)
//!     .with_default_backends()
//!     .threads(2)
//!     .build()
//!     .unwrap();
//! let response = engine.execute(&QueryRequest::top_k(5)).unwrap();
//! assert_eq!(response.results.len(), 60);
//! assert!(engine.execute(&QueryRequest::top_k(0)).is_err()); // typed, no panic
//! ```

pub(crate) mod epoch;
pub mod error;
pub mod plan;
pub mod registry;
pub mod request;
pub(crate) mod scope;

pub use error::MipsError;
pub use plan::PreparedPlan;
pub use registry::{
    BackendRegistry, BmmFactory, FexiproFactory, FnFactory, LempFactory, MaximusFactory,
    SolverFactory, SparseFactory,
};
pub use request::{
    ExclusionSet, QueryRequest, QueryResponse, QueryVector, UserSelection, VectorQueryRequest,
};
pub use scope::IndexScope;

use crate::optimus::{Optimus, OptimusConfig};
use crate::parallel::{par_query_range, par_query_subset};
use crate::precision::Precision;
use crate::solver::MipsSolver;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use epoch::{get_or_build, ArcCell, ModelEpoch};
use mips_data::{MfModel, ModelView};
use mips_linalg::kernels::dot_gemm_ordered;
use mips_sparse::SparseConfig;
use mips_topk::{TopKHeap, TopKList};
use scope::{ShardBuildStats, ShardScopedSolver};
use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

/// Engine-wide serving options: every [`EngineBuilder`] knob as one typed,
/// validated value. The per-knob builder methods are sugar over this
/// struct; [`EngineOptions::validate`] is the single place the invariants
/// live, so a hand-assembled options value and a builder-assembled one are
/// rejected identically.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for serving (user-partitioned, Fig. 6). `1` serves
    /// sequentially; values above one route every request through the
    /// multi-core path.
    pub threads: usize,
    /// Planner configuration (sampling fraction, t-test, seed).
    pub optimus: OptimusConfig,
    /// Numeric execution mode for the scan backends: pure f64 (default),
    /// forced f32-screen + f64-rescore, or planner's choice per plan.
    /// Results are bit-identical across all three — see
    /// [`crate::precision::Precision`].
    pub precision: Precision,
    /// Sparse inverted-index knobs (postings pruning threshold, hybrid
    /// dense-column split) for the `sparse` backend registered by
    /// [`EngineBuilder::with_default_backends`]. Results are bit-identical
    /// under every valid setting — these tune work skipped, not answers.
    pub sparse: SparseConfig,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            threads: 1,
            optimus: OptimusConfig::default(),
            precision: Precision::F64,
            sparse: SparseConfig::default(),
        }
    }
}

impl EngineOptions {
    /// Checks every invariant the engine relies on. [`EngineBuilder::build`]
    /// calls this; standalone callers can validate early.
    pub fn validate(&self) -> Result<(), MipsError> {
        if self.threads == 0 {
            return Err(MipsError::InvalidConfig(
                "threads must be at least 1".into(),
            ));
        }
        let f = self.optimus.sample_fraction;
        if !(f > 0.0 && f <= 1.0) {
            return Err(MipsError::InvalidConfig(format!(
                "optimus.sample_fraction must be in (0, 1], got {f}"
            )));
        }
        self.sparse
            .validate()
            .map_err(|msg| MipsError::InvalidConfig(format!("sparse: {msg}")))?;
        Ok(())
    }
}

/// Former name of [`EngineOptions`].
#[deprecated(note = "renamed to EngineOptions")]
pub type EngineConfig = EngineOptions;

/// Step-by-step assembly of an [`Engine`].
#[derive(Default)]
pub struct EngineBuilder {
    model: Option<Arc<MfModel>>,
    registry: BackendRegistry,
    config: EngineOptions,
    defer_error: Option<MipsError>,
    /// Set by [`EngineBuilder::with_default_backends`]: the built-in
    /// factories are instantiated at [`EngineBuilder::build`] time so they
    /// honour options (notably [`EngineOptions::sparse`]) set in either
    /// order around the call.
    pending_defaults: bool,
}

impl EngineBuilder {
    /// An empty builder.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Sets the model to serve.
    pub fn model(mut self, model: Arc<MfModel>) -> EngineBuilder {
        self.model = Some(model);
        self
    }

    /// Registers one backend; duplicate keys surface as an error from
    /// [`EngineBuilder::build`].
    pub fn register(self, factory: impl SolverFactory + 'static) -> EngineBuilder {
        self.register_arc(Arc::new(factory))
    }

    /// Registers an already-shared backend factory.
    pub fn register_arc(mut self, factory: Arc<dyn SolverFactory>) -> EngineBuilder {
        if let Err(err) = self.registry.register(factory) {
            self.defer_error.get_or_insert(err);
        }
        self
    }

    /// Registers all built-in backends
    /// (`bmm`, `maximus`, `lemp`, `fexipro-si`, `fexipro-sir`, `sparse`).
    /// Registration is deferred to [`EngineBuilder::build`] so the sparse
    /// backend picks up [`EngineOptions::sparse`] however the calls are
    /// ordered; explicit [`EngineBuilder::register`] calls keep their keys
    /// ahead of the defaults.
    pub fn with_default_backends(mut self) -> EngineBuilder {
        self.pending_defaults = true;
        self
    }

    /// Replaces the registry wholesale, clearing any error deferred from
    /// earlier incremental registrations (they targeted the replaced
    /// registry) along with any pending
    /// [`EngineBuilder::with_default_backends`] request.
    pub fn registry(mut self, registry: BackendRegistry) -> EngineBuilder {
        self.registry = registry;
        self.defer_error = None;
        self.pending_defaults = false;
        self
    }

    /// Sets the serving thread count (must be at least 1).
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.config.threads = threads;
        self
    }

    /// Sets the planner configuration.
    pub fn optimus(mut self, optimus: OptimusConfig) -> EngineBuilder {
        self.config.optimus = optimus;
        self
    }

    /// Sets the numeric execution mode (f64-direct, f32-screen +
    /// f64-rescore, or per-plan [`Precision::Auto`]). Results are
    /// bit-identical under every setting.
    pub fn precision(mut self, precision: Precision) -> EngineBuilder {
        self.config.precision = precision;
        self
    }

    /// Sets the sparse inverted-index knobs the default `sparse` backend is
    /// built with (see [`EngineOptions::sparse`]).
    pub fn sparse(mut self, sparse: SparseConfig) -> EngineBuilder {
        self.config.sparse = sparse;
        self
    }

    /// Sets every engine option at once.
    pub fn options(mut self, options: EngineOptions) -> EngineBuilder {
        self.config = options;
        self
    }

    /// Former name of [`EngineBuilder::options`].
    #[deprecated(note = "renamed to EngineBuilder::options")]
    pub fn config(self, config: EngineOptions) -> EngineBuilder {
        self.options(config)
    }

    /// Validates the assembly and produces the engine.
    pub fn build(mut self) -> Result<Engine, MipsError> {
        if let Some(err) = self.defer_error {
            return Err(err);
        }
        self.config.validate()?;
        if self.pending_defaults {
            for factory in BackendRegistry::with_defaults_configured(self.config.sparse).factories()
            {
                self.registry.register(Arc::clone(factory))?;
            }
        }
        let model = self
            .model
            .ok_or_else(|| MipsError::InvalidConfig("a model is required".into()))?;
        if model.num_users() == 0 || model.num_items() == 0 {
            return Err(MipsError::EmptyModel);
        }
        if self.registry.is_empty() {
            return Err(MipsError::NoBackends);
        }
        ensure_well_formed(&model)?;
        Ok(Engine {
            state: ArcCell::new(Arc::new(ModelEpoch::new(0, model))),
            registry: self.registry,
            config: self.config,
            planner_runs: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        })
    }
}

/// Cache-key suffix for mixed-precision solver variants: the epoch's
/// solver tier stores the screen build of backend `"bmm"` under
/// `"bmm+f32"`, and Auto plans label screen candidates with the same
/// suffixed key in their estimates.
pub(crate) const SCREEN_SUFFIX: &str = "+f32";

/// Cache-key suffix for the int8 screen tier — the variant below `+f32`:
/// `"bmm+i8"` stores the epoch's i8 screen build of backend `"bmm"`, and
/// Auto plans label i8 candidates with the same suffixed key.
pub(crate) const SCREEN_I8_SUFFIX: &str = "+i8";

/// Which screen tier a mixed-precision lookup targets. Both tiers share the
/// cache plumbing ([`Engine::screen_solver_on`] and the shard variant);
/// the kind only selects the cache-key suffix and the factory entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScreenKind {
    F32,
    I8,
}

impl ScreenKind {
    fn suffix(self) -> &'static str {
        match self {
            ScreenKind::F32 => SCREEN_SUFFIX,
            ScreenKind::I8 => SCREEN_I8_SUFFIX,
        }
    }
}

/// A planner candidate list: backend keys (suffixed for Auto's screen
/// variants) parallel to the solvers they dispatch to.
type PlanCandidates = (Vec<String>, Vec<Arc<dyn MipsSolver>>);

/// Under `Auto`, a `+f32` or `+i8` screen variant displaces its own f64 build only
/// when its sampled estimate is at most this fraction of the base's — i.e.
/// clearly faster, not within sampling noise of a tie. See
/// [`demote_marginal_screen_winner`] for the asymmetry argument that
/// justifies favouring the exact-direct incumbent.
pub(crate) const SCREEN_ADOPTION_MARGIN: f64 = 0.85;

/// The screen must also be estimated to save at least this much absolute
/// wall-clock before it displaces its f64 base. Sub-millisecond requests
/// finish inside the sampling noise floor: a relative margin alone still
/// adopts on a "30 µs vs 40 µs" sample, where the decision is pure noise
/// and the upside — even when real — is microseconds. Seconds-scale
/// requests (where the screen genuinely pays) clear this floor by orders
/// of magnitude.
pub(crate) const SCREEN_ADOPTION_FLOOR_SECONDS: f64 = 500e-6;

/// Screen-adoption margin: under `Auto` a screen variant competes against
/// its own f64 build, and the two run the identical access pattern — their
/// sampled estimates differ by the screen's true advantage plus sampling
/// noise. Adopting the screen on a hair's-breadth estimate trades bounded
/// upside for an unbounded noise regression, so the exact-direct incumbent
/// keeps the plan unless the screen is estimated clearly faster — below
/// [`SCREEN_ADOPTION_MARGIN`] of the base's time *and* saving at least
/// [`SCREEN_ADOPTION_FLOOR_SECONDS`] of absolute wall-clock. A wrongly
/// kept incumbent forgoes at most the margin; a wrongly adopted screen
/// can serve arbitrarily slower than the committed f64 baseline.
///
/// `chosen` must index a `+f32` or `+i8` estimate; returns the index of
/// its f64 base when the winner should be demoted to it, `None` when the
/// screen keeps the plan (clearly faster, or no base twin competed — the
/// forced `F32Rescore`/`I8Rescore` modes, where screens run under plain
/// keys). Both screen tiers face the same incumbent and the same noise
/// asymmetry, so they share one margin.
fn demote_marginal_screen_winner(
    estimates: &[crate::optimus::StrategyEstimate],
    chosen: usize,
) -> Option<usize> {
    let screen = &estimates[chosen];
    let base_name = screen
        .name
        .strip_suffix(SCREEN_SUFFIX)
        .or_else(|| screen.name.strip_suffix(SCREEN_I8_SUFFIX))?;
    estimates
        .iter()
        .position(|e| e.name == base_name)
        .filter(|&i| {
            let base = estimates[i].estimated_total_seconds;
            screen.estimated_total_seconds > SCREEN_ADOPTION_MARGIN * base
                || base - screen.estimated_total_seconds < SCREEN_ADOPTION_FLOOR_SECONDS
        })
}

/// Locks a cache mutex, recovering from poisoning: if a (custom) factory
/// panicked mid-build, the slot it was filling is still `None`, so the
/// sensible recovery is to let the next caller retry rather than poison the
/// engine forever.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> crate::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(crate::sync::PoisonError::into_inner)
}

/// Rejects malformed models — mismatched factor dimensions, or NaN and
/// infinite factors — with a typed error.
///
/// [`MfModel::new`] already validates all of this, but models can also
/// reach the engine through trusted zero-copy loaders
/// ([`MfModel::new_unvalidated`]); a factor-width mismatch would feed
/// unequal-length rows into the dot kernels, and a NaN that slips into a
/// norm-sorted index or a score comparison would poison results silently.
/// The engine therefore re-checks at its two model intake points —
/// [`EngineBuilder::build`] and [`Engine::swap_model`].
fn ensure_well_formed(model: &MfModel) -> Result<(), MipsError> {
    let (uf, itf) = (model.users().cols(), model.items().cols());
    if uf != itf {
        return Err(MipsError::InvalidConfig(format!(
            "model user matrix has {uf} factors but item matrix has {itf}"
        )));
    }
    if model.is_validated() {
        // Constructed through MfModel::new, which already scanned for
        // non-finite values — skip the O(n·f) re-scan so swap_model stays
        // cheap for the common (validated) retraining path.
        return Ok(());
    }
    for (what, matrix) in [("users", model.users()), ("items", model.items())] {
        for (row, values) in matrix.iter_rows().enumerate() {
            if values.iter().any(|v| !v.is_finite()) {
                return Err(MipsError::InvalidConfig(format!(
                    "model {what} matrix has a non-finite factor in row {row}"
                )));
            }
        }
    }
    Ok(())
}

/// The serving engine: backends + planner + the current model epoch.
///
/// The registry and configuration are immutable after construction. The
/// model — and everything derived from it (built solvers, cached plans) —
/// lives in an epoch that [`Engine::swap_model`] replaces atomically, so an
/// engine can be shared across threads, queried concurrently, and re-pointed
/// at a retrained model without draining traffic.
pub struct Engine {
    state: ArcCell<ModelEpoch>,
    registry: BackendRegistry,
    config: EngineOptions,
    planner_runs: AtomicU64,
    swaps: AtomicU64,
}

impl Engine {
    /// Starts assembling an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// A snapshot of the currently served model. In-flight requests may
    /// still be finishing on an older epoch's model after a
    /// [`swap_model`](Engine::swap_model); this is always the newest.
    pub fn model(&self) -> Arc<MfModel> {
        Arc::clone(&self.state.load().model)
    }

    /// The current model epoch (0 at build, +1 per successful swap).
    pub fn epoch(&self) -> u64 {
        self.state.load().id
    }

    /// How many model swaps have been accepted.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// The current epoch state, for epoch-pinned serving (the concurrent
    /// runtime snapshots this once per request).
    pub(crate) fn snapshot(&self) -> Arc<ModelEpoch> {
        self.state.load()
    }

    /// Atomically installs a retrained model and returns the new epoch id.
    ///
    /// The swap is an atomic pointer replacement: requests already past
    /// their epoch snapshot finish bit-identically on the old model (and
    /// its cached plans/indexes), requests entering afterwards see the new
    /// one — there is no draining window and no half-swapped state. All
    /// derived caches are invalidated wholesale because they live inside
    /// the epoch; the old epoch (model, indexes, plans) is freed when its
    /// last in-flight request completes.
    ///
    /// The new model is validated like at build time (non-empty, finite
    /// factors); its shape may differ freely — user count, catalog size,
    /// and factor dimensionality are all per-epoch properties.
    pub fn swap_model(&self, model: Arc<MfModel>) -> Result<u64, MipsError> {
        if model.num_users() == 0 || model.num_items() == 0 {
            return Err(MipsError::EmptyModel);
        }
        ensure_well_formed(&model)?;
        let installed = self
            .state
            .swap_with(|old| Arc::new(ModelEpoch::new(old.id + 1, model)));
        self.swaps.fetch_add(1, Ordering::SeqCst);
        Ok(installed.id)
    }

    /// The backend registry.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The engine options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.config
    }

    /// Former name of [`Engine::options`].
    #[deprecated(note = "renamed to Engine::options")]
    pub fn config(&self) -> &EngineOptions {
        &self.config
    }

    /// The engine's configured numeric mode (see
    /// [`EngineBuilder::precision`]). Per-plan effective decisions are on
    /// [`PreparedPlan::precision`].
    pub fn precision(&self) -> Precision {
        self.config.precision
    }

    /// Registered backend keys, in registration order.
    pub fn backend_keys(&self) -> Vec<&str> {
        self.registry.keys()
    }

    /// How many times the OPTIMUS planner has actually run (used to verify
    /// that prepared plans are reused rather than re-sampled).
    pub fn planner_runs(&self) -> u64 {
        self.planner_runs.load(Ordering::SeqCst)
    }

    /// The built solver for `key` on the current epoch, constructing and
    /// caching it on first use. Construction happens under a per-key lock:
    /// concurrent requests for other backends proceed, concurrent requests
    /// for this one share the single build.
    pub fn solver(&self, key: &str) -> Result<Arc<dyn MipsSolver>, MipsError> {
        self.solver_on(&self.snapshot(), key)
    }

    /// [`Engine::solver`] pinned to one epoch snapshot. The build runs
    /// outside the cache lock and installs compare-and-swap style (see
    /// [`epoch::get_or_build`]), so a slow build never convoys concurrent
    /// first-touch builders of other state.
    fn solver_on(&self, state: &ModelEpoch, key: &str) -> Result<Arc<dyn MipsSolver>, MipsError> {
        let factory = Arc::clone(
            self.registry
                .get(key)
                .ok_or_else(|| MipsError::UnknownBackend { key: key.into() })?,
        );
        let cell = {
            let mut map = lock_recovering(&state.solvers);
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        get_or_build(&cell, || {
            Ok(Arc::from(factory.build(&state.model)?) as Arc<dyn MipsSolver>)
        })
    }

    /// The mixed-precision screen variant of `key`'s solver on one epoch,
    /// cached in the same solver tier under `"<key>+f32"` or `"<key>+i8"`
    /// per `kind`. `Ok(None)` when the backend has no path for that tier —
    /// determining that is free (such factories return before building
    /// anything), so the probe is repeated per call rather than cached.
    fn screen_solver_on(
        &self,
        state: &ModelEpoch,
        key: &str,
        kind: ScreenKind,
    ) -> Result<Option<Arc<dyn MipsSolver>>, MipsError> {
        let factory = Arc::clone(
            self.registry
                .get(key)
                .ok_or_else(|| MipsError::UnknownBackend { key: key.into() })?,
        );
        let cache_key = format!("{key}{}", kind.suffix());
        let cell = {
            let mut map = lock_recovering(&state.solvers);
            Arc::clone(map.entry(cache_key.clone()).or_default())
        };
        // "No screen path" travels through `get_or_build` as a sentinel
        // error so the cell stays unfilled and no half-state is cached.
        match get_or_build(&cell, || {
            let built = match kind {
                ScreenKind::F32 => factory.build_screen(&state.model),
                ScreenKind::I8 => factory.build_screen_i8(&state.model),
            };
            match built {
                Some(built) => Ok(Arc::from(built?) as Arc<dyn MipsSolver>),
                None => Err(MipsError::UnknownBackend {
                    key: cache_key.clone(),
                }),
            }
        }) {
            Ok(solver) => Ok(Some(solver)),
            Err(MipsError::UnknownBackend { key: k }) if k == cache_key => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// The shard-local solver for `key` over the contiguous user range
    /// `users`, built lazily over a [`ModelView`] of the epoch's model and
    /// cached in the epoch's per-shard tier under `(bounds, key)`. The
    /// returned solver speaks **global** user ids restricted to the range.
    ///
    /// Real construction work (a cache miss) is recorded into `stats` so
    /// the serving runtime can surface per-shard build counts and cost.
    fn shard_solver_on(
        &self,
        state: &ModelEpoch,
        users: &Range<usize>,
        key: &str,
        stats: &mut ShardBuildStats,
    ) -> Result<Arc<dyn MipsSolver>, MipsError> {
        let factory = Arc::clone(
            self.registry
                .get(key)
                .ok_or_else(|| MipsError::UnknownBackend { key: key.into() })?,
        );
        let cell = {
            let mut map = lock_recovering(&state.shard_solvers);
            Arc::clone(
                map.entry(((users.start, users.end), key.to_string()))
                    .or_default(),
            )
        };
        get_or_build(&cell, || {
            let started = Instant::now();
            let view = ModelView::of_range(&state.model, users.clone());
            let inner = factory.build_view(&view)?;
            let solver: Arc<dyn MipsSolver> = Arc::new(ShardScopedSolver::new(inner, users.start));
            stats.builds += 1;
            stats.build_ns += started.elapsed().as_nanos() as u64;
            Ok(solver)
        })
    }

    /// The shard-local mixed-precision variant — [`Engine::screen_solver_on`]
    /// over a user-range view, cached under `(bounds, "<key>+f32")` or
    /// `(bounds, "<key>+i8")` per `kind`.
    fn screen_shard_solver_on(
        &self,
        state: &ModelEpoch,
        users: &Range<usize>,
        key: &str,
        kind: ScreenKind,
        stats: &mut ShardBuildStats,
    ) -> Result<Option<Arc<dyn MipsSolver>>, MipsError> {
        let factory = Arc::clone(
            self.registry
                .get(key)
                .ok_or_else(|| MipsError::UnknownBackend { key: key.into() })?,
        );
        let cache_key = format!("{key}{}", kind.suffix());
        let cell = {
            let mut map = lock_recovering(&state.shard_solvers);
            Arc::clone(
                map.entry(((users.start, users.end), cache_key.clone()))
                    .or_default(),
            )
        };
        match get_or_build(&cell, || {
            let started = Instant::now();
            let view = ModelView::of_range(&state.model, users.clone());
            let built = match kind {
                ScreenKind::F32 => factory.build_screen_view(&view),
                ScreenKind::I8 => factory.build_screen_i8_view(&view),
            };
            match built {
                Some(built) => {
                    let solver: Arc<dyn MipsSolver> =
                        Arc::new(ShardScopedSolver::new(built?, users.start));
                    stats.builds += 1;
                    stats.build_ns += started.elapsed().as_nanos() as u64;
                    Ok(solver)
                }
                None => Err(MipsError::UnknownBackend {
                    key: cache_key.clone(),
                }),
            }
        }) {
            Ok(solver) => Ok(Some(solver)),
            Err(MipsError::UnknownBackend { key: k }) if k == cache_key => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// Serves a request with an explicitly named backend — no planning.
    pub fn execute_with(
        &self,
        key: &str,
        request: &QueryRequest,
    ) -> Result<QueryResponse, MipsError> {
        let state = self.snapshot();
        request.validate(&state.model)?;
        // Named dispatch honors a forced F32Rescore/I8Rescore (falling
        // back to the f64 build when the backend has no path for that
        // tier); under Auto the precision decision belongs to the planner,
        // so unplanned named requests serve f64-direct.
        let solver = match self.config.precision {
            Precision::F32Rescore => match self.screen_solver_on(&state, key, ScreenKind::F32)? {
                Some(screen) => screen,
                None => self.solver_on(&state, key)?,
            },
            Precision::I8Rescore => match self.screen_solver_on(&state, key, ScreenKind::I8)? {
                Some(screen) => screen,
                None => self.solver_on(&state, key)?,
            },
            _ => self.solver_on(&state, key)?,
        };
        serve(
            &state.model,
            solver.as_ref(),
            self.config.threads,
            request,
            false,
            state.id,
        )
    }

    /// Serves an ad-hoc [`VectorQueryRequest`]: the exact top-`k` items
    /// for one factor-space vector, dense or sparse — the point-lookup
    /// face of the engine, with no user id involved, so it answers for
    /// "users" the model has never seen (fresh embeddings, composed
    /// queries, sparse bag-of-words vectors).
    ///
    /// A sparse payload is densified before serving, so both encodings of
    /// the same vector return bit-identical results. When the sparse
    /// inverted-index backend is registered, its point-lookup path serves
    /// the query (the index is built lazily and cached on the epoch, like
    /// every solver); otherwise the engine runs the canonical one-vector
    /// scan. The two paths are bit-identical by the backend exactness
    /// contract, so routing is invisible in the results.
    pub fn execute_vector(&self, request: &VectorQueryRequest) -> Result<QueryResponse, MipsError> {
        let state = self.snapshot();
        request.validate(&state.model)?;
        let query = request.vector.densify();
        let started = Instant::now();
        let served = if self.registry.get("sparse").is_some() {
            let solver = self.solver_on(&state, "sparse")?;
            solver
                .query_vector(&query, request.k)
                .map(|list| (list, solver.name().to_string()))
        } else {
            None
        };
        let (list, backend) = match served {
            Some(hit) => hit,
            None => (
                scan_vector_topk(&state.model, &query, request.k),
                // The fallback is the brute-force scan the backends are
                // all measured against; report it under that name.
                "Blocked MM".to_string(),
            ),
        };
        Ok(QueryResponse {
            results: vec![list],
            backend,
            precision: Precision::F64,
            planned: false,
            epoch: state.id,
            serve_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Runs the OPTIMUS planner for requests at `k` and caches the
    /// decision in the current epoch. Calling again with the same `k` (on
    /// the same epoch) returns the cached plan without re-sampling.
    /// Planning happens under a per-`k` lock, so a long sampling run for
    /// one `k` never stalls requests at another.
    pub fn prepare(&self, k: usize) -> Result<Arc<PreparedPlan>, MipsError> {
        self.prepare_on(&self.snapshot(), k)
    }

    /// [`Engine::prepare`] pinned to one epoch snapshot — the concurrent
    /// runtime uses this so a sub-request plans (and serves) on the epoch
    /// its request was admitted under, even if a swap lands in between.
    pub(crate) fn prepare_on(
        &self,
        state: &ModelEpoch,
        k: usize,
    ) -> Result<Arc<PreparedPlan>, MipsError> {
        if k == 0 || k > state.model.num_items() {
            return Err(MipsError::InvalidK {
                k,
                num_items: state.model.num_items(),
            });
        }
        let cell = {
            let mut map = lock_recovering(&state.plans);
            Arc::clone(map.entry(k).or_default())
        };
        get_or_build(&cell, || Ok(Arc::new(self.plan_for_k(state, k)?)))
    }

    /// The plan for requests at `k` restricted to the contiguous user
    /// range `users`, planned **per shard**: candidates are shard-local
    /// solvers built over a view of the range (plus, under
    /// [`IndexScope::Auto`], the global plan's winner), and OPTIMUS
    /// samples the shard's own users. Cached in the epoch's per-shard tier
    /// under `(bounds, k)`; reclaimed with the epoch exactly like the
    /// global tier.
    pub(crate) fn prepare_shard_on(
        &self,
        state: &ModelEpoch,
        users: &Range<usize>,
        k: usize,
        scope: IndexScope,
        stats: &mut ShardBuildStats,
    ) -> Result<Arc<PreparedPlan>, MipsError> {
        debug_assert!(scope.builds_local(), "global scope plans via prepare_on");
        if k == 0 || k > state.model.num_items() {
            return Err(MipsError::InvalidK {
                k,
                num_items: state.model.num_items(),
            });
        }
        let auto = scope == IndexScope::Auto;
        let cell = {
            let mut map = lock_recovering(&state.shard_plans);
            Arc::clone(map.entry(((users.start, users.end), k, auto)).or_default())
        };
        get_or_build(&cell, || {
            Ok(Arc::new(
                self.shard_plan_for_k(state, users, k, auto, stats)?,
            ))
        })
    }

    /// Serves a request through the plan cache: plans once per `k` per
    /// epoch, then dispatches to the cached winner.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, MipsError> {
        let state = self.snapshot();
        request.validate(&state.model)?;
        let plan = self.prepare_on(&state, request.k)?;
        plan.execute_prevalidated(request)
    }

    /// Assembles the planner's candidate list for one epoch under the
    /// engine's precision mode: registry backends in order, where
    /// [`Precision::F32Rescore`] and [`Precision::I8Rescore`] substitute
    /// each backend's screen variant for the forced tier when it has one
    /// (labelled with the plain key — the mode is forced, not competed),
    /// and [`Precision::Auto`] adds each available screen variant as an
    /// **extra** candidate labelled `"<key>+f32"` / `"<key>+i8"` so
    /// OPTIMUS prices the three modes against each other.
    fn precision_candidates(&self, state: &ModelEpoch) -> Result<PlanCandidates, MipsError> {
        let mut keys = Vec::new();
        let mut solvers: Vec<Arc<dyn MipsSolver>> = Vec::new();
        for key in self.registry.keys() {
            match self.config.precision {
                Precision::F64 => {
                    keys.push(key.to_string());
                    solvers.push(self.solver_on(state, key)?);
                }
                Precision::F32Rescore => {
                    let solver = match self.screen_solver_on(state, key, ScreenKind::F32)? {
                        Some(screen) => screen,
                        None => self.solver_on(state, key)?,
                    };
                    keys.push(key.to_string());
                    solvers.push(solver);
                }
                Precision::I8Rescore => {
                    let solver = match self.screen_solver_on(state, key, ScreenKind::I8)? {
                        Some(screen) => screen,
                        None => self.solver_on(state, key)?,
                    };
                    keys.push(key.to_string());
                    solvers.push(solver);
                }
                Precision::Auto => {
                    keys.push(key.to_string());
                    solvers.push(self.solver_on(state, key)?);
                    for kind in [ScreenKind::F32, ScreenKind::I8] {
                        if let Some(screen) = self.screen_solver_on(state, key, kind)? {
                            keys.push(format!("{key}{}", kind.suffix()));
                            solvers.push(screen);
                        }
                    }
                }
            }
        }
        Ok((keys, solvers))
    }

    /// The planning phase behind [`Engine::prepare`].
    fn plan_for_k(&self, state: &ModelEpoch, k: usize) -> Result<PreparedPlan, MipsError> {
        let (keys, solvers) = self.precision_candidates(state)?;
        self.planner_runs.fetch_add(1, Ordering::SeqCst);

        if solvers.len() == 1 {
            // One candidate: nothing to sample.
            return Ok(PreparedPlan {
                model: Arc::clone(&state.model),
                precision: solvers[0].precision(),
                winner: Arc::clone(&solvers[0]),
                backend_key: keys[0].clone(),
                planned_k: k,
                threads: self.config.threads,
                epoch: state.id,
                estimates: Vec::new(),
                sample_size: 0,
                decision_seconds: 0.0,
                shard_users: None,
                local_index: false,
                analytical_bmm_seconds: 0.0,
                analytical_screen_seconds: 0.0,
                analytical_sparse_seconds: 0.0,
            });
        }

        let view = ModelView::full(&state.model);
        let (winner_idx, choice) = self.run_planner(&view, k, &solvers);
        Ok(PreparedPlan {
            model: Arc::clone(&state.model),
            precision: solvers[winner_idx].precision(),
            winner: Arc::clone(&solvers[winner_idx]),
            backend_key: keys[winner_idx].clone(),
            planned_k: k,
            threads: self.config.threads,
            epoch: state.id,
            estimates: choice.estimates,
            sample_size: choice.sample_size,
            decision_seconds: choice.decision_seconds,
            shard_users: None,
            local_index: false,
            analytical_bmm_seconds: self.analytical_bmm_seconds(&view),
            analytical_screen_seconds: self.analytical_screen_seconds(&view, &solvers),
            analytical_sparse_seconds: self.analytical_sparse_seconds(&view, &solvers),
        })
    }

    /// The planning phase behind [`Engine::prepare_shard_on`]: candidates
    /// are the shard-local solvers for every registered backend (built —
    /// or fetched from the epoch's per-shard tier — over a view of
    /// `users`), plus the global plan's winner when `auto` is set. OPTIMUS
    /// samples the shard's own users, so the decision reflects the slice's
    /// shape, not the whole model's.
    fn shard_plan_for_k(
        &self,
        state: &ModelEpoch,
        users: &Range<usize>,
        k: usize,
        auto: bool,
        stats: &mut ShardBuildStats,
    ) -> Result<PreparedPlan, MipsError> {
        // (key, is-shard-local, solver), sampled in this order below.
        let mut candidates: Vec<(String, bool, Arc<dyn MipsSolver>)> = Vec::new();
        if auto {
            let global = self.prepare_on(state, k)?;
            candidates.push((
                global.backend_key().to_string(),
                false,
                Arc::clone(&global.winner),
            ));
        }
        for key in self.registry.keys() {
            match self.config.precision {
                Precision::F64 => {
                    let solver = self.shard_solver_on(state, users, key, stats)?;
                    candidates.push((key.to_string(), true, solver));
                }
                Precision::F32Rescore => {
                    let solver = match self.screen_shard_solver_on(
                        state,
                        users,
                        key,
                        ScreenKind::F32,
                        stats,
                    )? {
                        Some(screen) => screen,
                        None => self.shard_solver_on(state, users, key, stats)?,
                    };
                    candidates.push((key.to_string(), true, solver));
                }
                Precision::I8Rescore => {
                    let solver = match self.screen_shard_solver_on(
                        state,
                        users,
                        key,
                        ScreenKind::I8,
                        stats,
                    )? {
                        Some(screen) => screen,
                        None => self.shard_solver_on(state, users, key, stats)?,
                    };
                    candidates.push((key.to_string(), true, solver));
                }
                Precision::Auto => {
                    let solver = self.shard_solver_on(state, users, key, stats)?;
                    candidates.push((key.to_string(), true, solver));
                    for kind in [ScreenKind::F32, ScreenKind::I8] {
                        if let Some(screen) =
                            self.screen_shard_solver_on(state, users, key, kind, stats)?
                        {
                            candidates.push((format!("{key}{}", kind.suffix()), true, screen));
                        }
                    }
                }
            }
        }
        self.planner_runs.fetch_add(1, Ordering::SeqCst);

        if candidates.len() == 1 {
            // One candidate (PerShard scope, single backend): nothing to
            // sample — mirror the global single-candidate shortcut.
            let (backend_key, local_index, winner) = candidates.pop().expect("one candidate");
            return Ok(PreparedPlan {
                model: Arc::clone(&state.model),
                precision: winner.precision(),
                winner,
                backend_key,
                planned_k: k,
                threads: self.config.threads,
                epoch: state.id,
                estimates: Vec::new(),
                sample_size: 0,
                decision_seconds: 0.0,
                shard_users: Some(users.clone()),
                local_index,
                analytical_bmm_seconds: 0.0,
                analytical_screen_seconds: 0.0,
                analytical_sparse_seconds: 0.0,
            });
        }

        let view = ModelView::of_range(&state.model, users.clone());
        let solvers: Vec<Arc<dyn MipsSolver>> =
            candidates.iter().map(|(_, _, s)| Arc::clone(s)).collect();
        let (winner_idx, choice) = self.run_planner(&view, k, &solvers);
        let analytical_bmm_seconds = self.analytical_bmm_seconds(&view);
        let analytical_screen_seconds = self.analytical_screen_seconds(&view, &solvers);
        let analytical_sparse_seconds = self.analytical_sparse_seconds(&view, &solvers);
        let (backend_key, local_index, winner) = candidates.swap_remove(winner_idx);
        Ok(PreparedPlan {
            model: Arc::clone(&state.model),
            precision: winner.precision(),
            winner,
            backend_key,
            planned_k: k,
            threads: self.config.threads,
            epoch: state.id,
            estimates: choice.estimates,
            sample_size: choice.sample_size,
            decision_seconds: choice.decision_seconds,
            shard_users: Some(users.clone()),
            local_index,
            analytical_bmm_seconds,
            analytical_screen_seconds,
            analytical_sparse_seconds,
        })
    }

    /// Runs OPTIMUS over the candidate set, reordered so its t-test timing
    /// reference is the first batch-capable candidate (BMM-like) when one
    /// is present — regardless of input order. Returns the winner's index
    /// **in the input order** plus the planner's evidence.
    fn run_planner(
        &self,
        view: &ModelView,
        k: usize,
        solvers: &[Arc<dyn MipsSolver>],
    ) -> (usize, crate::optimus::PlannedChoice) {
        let mut order: Vec<usize> = (0..solvers.len()).collect();
        if let Some(batch) = solvers.iter().position(|s| s.batches_users()) {
            order.remove(batch);
            order.insert(0, batch);
        }
        let optimus = Optimus::new(self.config.optimus);
        let refs: Vec<&dyn MipsSolver> = order.iter().map(|&i| solvers[i].as_ref()).collect();
        let mut choice = optimus.choose(view, k, &refs);

        if matches!(
            refs[choice.chosen].precision(),
            Precision::F32Rescore | Precision::I8Rescore
        ) {
            if let Some(base) = demote_marginal_screen_winner(&choice.estimates, choice.chosen) {
                choice.chosen = base;
            }
        }
        (order[choice.chosen], choice)
    }

    /// The §IV-A analytical prior recorded on sampled plans: predicted
    /// multiply-stage seconds for the view's users over the full catalog,
    /// using the registry's calibrated FLOP rate (measured once per SIMD
    /// kernel, cached across epochs and shards).
    fn analytical_bmm_seconds(&self, view: &ModelView) -> f64 {
        self.registry.analytical_bmm().predict_seconds(
            view.num_users(),
            view.num_items(),
            view.num_factors(),
        )
    }

    /// The analytical prior for the f32 **screen phase** of the
    /// mixed-precision path, recorded only when a screen candidate
    /// actually competed in this plan (so pure-f64 engines never pay the
    /// f32 calibration). The rescore phase is data-dependent and covered
    /// by online sampling, like the top-k stage of the f64 prior.
    fn analytical_screen_seconds(&self, view: &ModelView, solvers: &[Arc<dyn MipsSolver>]) -> f64 {
        if solvers
            .iter()
            .all(|s| s.precision() != Precision::F32Rescore)
        {
            return 0.0;
        }
        self.registry.analytical_bmm_f32().predict_seconds(
            view.num_users(),
            view.num_items(),
            view.num_factors(),
        )
    }

    /// The analytical prior for the sparse inverted-index **accumulation
    /// stage**, recorded only when the sparse backend competed in this plan
    /// (so dense-only engines never pay the postings-walk calibration).
    /// Expected work is derived from sampled nnz/density statistics the
    /// same way the BMM prior derives FLOPs from the view's shape: each
    /// query touches one postings list per nonzero query factor, and each
    /// list holds `density × num_items` postings on average. Candidate
    /// selection and the exact rescore are data-dependent and covered by
    /// online sampling, like the top-k stage of the dense prior.
    fn analytical_sparse_seconds(&self, view: &ModelView, solvers: &[Arc<dyn MipsSolver>]) -> f64 {
        if solvers.iter().all(|s| s.name() != "Sparse-II") {
            return 0.0;
        }
        const SAMPLE_ROWS: usize = 256;
        let user_stats = mips_data::SparsityStats::sample(view.model().users(), SAMPLE_ROWS);
        let item_stats = mips_data::SparsityStats::sample(view.items(), SAMPLE_ROWS);
        let updates_per_query =
            user_stats.avg_nnz_per_row * item_stats.density * view.num_items() as f64;
        let updates = view.num_users() as f64 * updates_per_query;
        self.registry.analytical_sparse().predict_seconds(updates)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.snapshot();
        f.debug_struct("Engine")
            .field("model", &state.model.name())
            .field("epoch", &state.id)
            .field("backends", &self.registry.keys())
            .field("threads", &self.config.threads)
            .field("planner_runs", &self.planner_runs())
            .finish()
    }
}

/// Runs the request's user selection through the solver at the given `k`.
fn dispatch(
    model: &MfModel,
    solver: &dyn MipsSolver,
    threads: usize,
    users: &UserSelection,
    k: usize,
) -> Vec<TopKList> {
    match users {
        // All-users at one thread takes the solver's specialized query_all
        // path (MAXIMUS serves whole clusters in membership order there).
        UserSelection::All if threads == 1 => solver.query_all(k),
        UserSelection::All => par_query_range(solver, k, 0..model.num_users(), threads),
        UserSelection::Range(r) => par_query_range(solver, k, r.clone(), threads),
        UserSelection::Ids(ids) => par_query_subset(solver, k, ids, threads),
    }
}

/// Canonical one-vector scan: every item's [`dot_gemm_ordered`] score
/// pushed through a [`TopKHeap`] (ties to the smaller item id). This is
/// the reference every [`MipsSolver::query_vector`] implementation must
/// match bit for bit, and the fallback [`Engine::execute_vector`] serves
/// when no backend offers a point-lookup path.
fn scan_vector_topk(model: &MfModel, query: &[f64], k: usize) -> TopKList {
    let items = model.items();
    let mut heap = TopKHeap::new(k);
    for i in 0..items.rows() {
        heap.push(dot_gemm_ordered(query, items.row(i)), i as u32);
    }
    heap.into_sorted()
}

/// Serves one **already-validated** request with a concrete solver.
///
/// Shared by [`Engine::execute_with`], [`Engine::execute`], and
/// [`PreparedPlan::execute`], each of which validates exactly once before
/// calling in; both engine-level threading and exact exclusion handling
/// live here.
///
/// Exclusions are served exactly by widening `k`: a user's true top-k among
/// non-excluded items always sits within their top-(k + |exclusions|)
/// overall. The widening of the main batch is capped so one power user with
/// thousands of rated items cannot multiply the serve cost for everyone —
/// users whose exclusion count exceeds the cap are re-served individually
/// at their own width in a second, narrow pass.
pub(crate) fn serve(
    model: &MfModel,
    solver: &dyn MipsSolver,
    threads: usize,
    request: &QueryRequest,
    planned: bool,
    epoch: u64,
) -> Result<QueryResponse, MipsError> {
    debug_assert!(request.validate(model).is_ok(), "caller must validate");
    let start = Instant::now();
    let k = request.k;
    let num_items = model.num_items();

    let results = match request.exclude.as_ref().filter(|e| !e.is_empty()) {
        None => dispatch(model, solver, threads, &request.users, k),
        Some(e) => {
            let counts: Vec<usize> = request
                .selected_users_iter(model)
                .map(|u| e.count_for(u))
                .collect();
            let max_widen = counts.iter().copied().max().unwrap_or(0);
            // Cap the batch widening at max(k, 32): proportional to k so the
            // bulk pass does at most ~2x work, floored so moderate exclusion
            // lists never trigger the outlier pass.
            let bulk_widen = max_widen.min(k.max(32));
            let k_bulk = (k + bulk_widen).min(num_items);

            let raw = dispatch(model, solver, threads, &request.users, k_bulk);
            debug_assert_eq!(counts.len(), raw.len());
            let mut results: Vec<TopKList> = request
                .selected_users_iter(model)
                .zip(raw)
                .map(|(u, list)| filter_excluded(list, e.for_user(u), k))
                .collect();

            // Outlier pass: users whose exclusion list exceeds the bulk
            // widening need a wider query for exactness (unless the bulk
            // pass already ranked the whole catalog). Outliers are grouped
            // by the power-of-two ceiling of their needed width so each
            // user pays at most ~2x their own widening, never the widest
            // user's.
            if k_bulk < num_items {
                let mut groups: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
                for (pos, u) in request.selected_users_iter(model).enumerate() {
                    if counts[pos] > bulk_widen {
                        let k_user = (k + counts[pos]).min(num_items);
                        groups
                            .entry(k_user.next_power_of_two().min(num_items))
                            .or_default()
                            .push((pos, u));
                    }
                }
                for (k_out, members) in groups {
                    let ids: Vec<usize> = members.iter().map(|&(_, u)| u).collect();
                    let lists = par_query_subset(solver, k_out, &ids, threads);
                    for (&(pos, u), list) in members.iter().zip(lists) {
                        results[pos] = filter_excluded(list, e.for_user(u), k);
                    }
                }
            }
            results
        }
    };

    Ok(QueryResponse {
        results,
        backend: solver.name().to_string(),
        precision: solver.precision(),
        planned,
        epoch,
        serve_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Drops excluded items from a widened list and truncates to `k`.
fn filter_excluded(
    mut list: TopKList,
    excluded: &std::collections::HashSet<u32>,
    k: usize,
) -> TopKList {
    if excluded.is_empty() {
        // Exclusion-free users (the majority) keep their buffers: truncate
        // the widened list in place instead of rebuilding it.
        list.items.truncate(k);
        list.scores.truncate(k);
        return list;
    }
    let mut out = TopKList::empty();
    for (item, score) in list.iter() {
        if out.len() == k {
            break;
        }
        if !excluded.contains(&item) {
            out.items.push(item);
            out.scores.push(score);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_linalg::CacheConfig;

    fn model(users: usize, items: usize) -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: items,
            num_factors: 8,
            ..SynthConfig::default()
        }))
    }

    fn tiny_optimus() -> OptimusConfig {
        OptimusConfig {
            sample_fraction: 0.05,
            cache: CacheConfig {
                l1_bytes: 1024,
                l2_bytes: 2048,
                l3_bytes: 4096,
            },
            ..OptimusConfig::default()
        }
    }

    fn engine(users: usize, items: usize) -> Engine {
        EngineBuilder::new()
            .model(model(users, items))
            .with_default_backends()
            .optimus(tiny_optimus())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_each_bad_assembly() {
        assert!(matches!(
            EngineBuilder::new().with_default_backends().build(),
            Err(MipsError::InvalidConfig(_))
        ));
        assert_eq!(
            EngineBuilder::new().model(model(4, 6)).build().unwrap_err(),
            MipsError::NoBackends
        );
        assert!(matches!(
            EngineBuilder::new()
                .model(model(4, 6))
                .with_default_backends()
                .threads(0)
                .build(),
            Err(MipsError::InvalidConfig(_))
        ));
        assert_eq!(
            EngineBuilder::new()
                .model(model(4, 6))
                .register(BmmFactory)
                .register(BmmFactory)
                .build()
                .unwrap_err(),
            MipsError::DuplicateBackend { key: "bmm".into() }
        );
    }

    #[test]
    fn degenerate_backend_configs_are_typed_errors_not_panics() {
        use crate::maximus::MaximusConfig;
        let engine = EngineBuilder::new()
            .model(model(8, 12))
            .register(MaximusFactory::new(MaximusConfig {
                num_clusters: 0,
                ..MaximusConfig::default()
            }))
            .build()
            .expect("config errors surface at first use, not assembly");
        for _ in 0..2 {
            // Both attempts fail cleanly; the cache must not poison.
            let err = engine
                .execute(&QueryRequest::top_k(2))
                .expect_err("degenerate config cannot build");
            assert!(
                matches!(&err, MipsError::BackendBuild { key, .. } if key == "maximus"),
                "{err:?}"
            );
        }
        let lemp = LempFactory::new(mips_lemp::LempConfig {
            bucket_size: 0,
            ..mips_lemp::LempConfig::default()
        });
        assert!(matches!(
            lemp.build(&model(8, 12)),
            Err(MipsError::BackendBuild { .. })
        ));
    }

    #[test]
    fn panicking_custom_factory_does_not_poison_the_engine() {
        let engine = EngineBuilder::new()
            .model(model(8, 12))
            .register(FnFactory::new("boom", |_: &Arc<MfModel>| {
                panic!("factory exploded")
            }))
            .register(BmmFactory)
            .build()
            .unwrap();
        // The panic propagates to the first caller...
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute_with("boom", &QueryRequest::top_k(2))
        }));
        assert!(first.is_err());
        // ...but the engine recovers: other backends serve, and retrying the
        // broken key panics with the factory's own message, not a poisoned
        // mutex.
        let ok = engine
            .execute_with("bmm", &QueryRequest::top_k(2))
            .expect("other backends unaffected");
        assert_eq!(ok.results.len(), 8);
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute_with("boom", &QueryRequest::top_k(2))
        }));
        let message = *second.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(message, "factory exploded");
    }

    #[test]
    fn replacing_the_registry_clears_earlier_registration_errors() {
        // A duplicate register() poisons the builder, but swapping in a
        // whole valid registry recovers it.
        let engine = EngineBuilder::new()
            .model(model(4, 6))
            .register(BmmFactory)
            .register(BmmFactory)
            .registry(BackendRegistry::with_defaults())
            .build()
            .expect("replaced registry is valid");
        assert_eq!(engine.backend_keys().len(), 6);
    }

    #[test]
    fn execute_with_matches_direct_solver_calls() {
        let m = model(40, 80);
        let engine = EngineBuilder::new()
            .model(Arc::clone(&m))
            .with_default_backends()
            .build()
            .unwrap();
        let direct = BmmSolver::build(Arc::clone(&m)).query_all(5);
        let via_engine = engine.execute_with("bmm", &QueryRequest::top_k(5)).unwrap();
        assert_eq!(via_engine.results, direct);
        assert_eq!(via_engine.backend, "Blocked MM");
        assert!(!via_engine.planned);
        // Every registered backend returns the same items.
        for key in engine.backend_keys() {
            let response = engine.execute_with(key, &QueryRequest::top_k(5)).unwrap();
            for (u, (got, want)) in response.results.iter().zip(&direct).enumerate() {
                assert_eq!(got.items, want.items, "{key} user {u}");
            }
        }
    }

    #[test]
    fn vector_queries_match_the_canonical_scan_on_both_routes() {
        let m = model(30, 70);
        // With the sparse backend registered, the inverted index serves.
        let with_sparse = EngineBuilder::new()
            .model(Arc::clone(&m))
            .with_default_backends()
            .build()
            .unwrap();
        // Without it, the engine falls back to the canonical scan.
        let without = EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(BmmFactory)
            .build()
            .unwrap();
        let direct = BmmSolver::build(Arc::clone(&m)).query_all(5);
        for u in [0usize, 7, 29] {
            let request = VectorQueryRequest::dense(5, m.users().row(u).to_vec());
            let routed = with_sparse.execute_vector(&request).unwrap();
            let scanned = without.execute_vector(&request).unwrap();
            assert_eq!(routed.backend, "Sparse-II");
            assert_eq!(scanned.backend, "Blocked MM");
            assert!(!routed.planned && !scanned.planned);
            assert_eq!(routed.results.len(), 1);
            // Both routes are bit-identical to each other and to serving
            // the same vector as a stored user row.
            for response in [&routed, &scanned] {
                let got = &response.results[0];
                assert_eq!(got.items, direct[u].items, "user {u}");
                let gb: Vec<u64> = got.scores.iter().map(|s| s.to_bits()).collect();
                let wb: Vec<u64> = direct[u].scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(gb, wb, "score bits user {u}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_vector_payloads_are_bit_identical() {
        use mips_data::sparse::SparseVec;
        let engine = engine(20, 50);
        // A mostly-zero query: the natural sparse-payload case.
        let mut dense = vec![0.0f64; 8];
        dense[1] = 0.75;
        dense[6] = -1.25;
        let via_dense = engine
            .execute_vector(&VectorQueryRequest::dense(4, dense.clone()))
            .unwrap();
        let via_sparse = engine
            .execute_vector(&VectorQueryRequest::sparse(
                4,
                SparseVec::from_dense(&dense),
            ))
            .unwrap();
        assert_eq!(via_dense.results, via_sparse.results);
        assert_eq!(via_dense.backend, via_sparse.backend);
    }

    #[test]
    fn vector_query_errors_are_typed() {
        let engine = engine(10, 20);
        assert_eq!(
            engine
                .execute_vector(&VectorQueryRequest::dense(0, vec![0.0; 8]))
                .unwrap_err(),
            MipsError::InvalidK {
                k: 0,
                num_items: 20
            }
        );
        assert_eq!(
            engine
                .execute_vector(&VectorQueryRequest::dense(21, vec![0.0; 8]))
                .unwrap_err(),
            MipsError::InvalidK {
                k: 21,
                num_items: 20
            }
        );
        assert!(matches!(
            engine
                .execute_vector(&VectorQueryRequest::dense(3, vec![0.0; 5]))
                .unwrap_err(),
            MipsError::InvalidVector(_)
        ));
        let mut bad = vec![0.0f64; 8];
        bad[2] = f64::NAN;
        let err = engine
            .execute_vector(&VectorQueryRequest::dense(3, bad))
            .unwrap_err();
        assert!(matches!(err, MipsError::InvalidVector(_)));
        assert_eq!(err.http_status(), 400);
    }

    #[test]
    fn selections_come_back_in_request_order() {
        let engine = engine(30, 50);
        let all = engine.execute_with("bmm", &QueryRequest::top_k(3)).unwrap();
        let range = engine
            .execute_with("bmm", &QueryRequest::top_k(3).users_range(10..20))
            .unwrap();
        assert_eq!(range.results.len(), 10);
        assert_eq!(range.results[0], all.results[10]);
        let ids = engine
            .execute_with("bmm", &QueryRequest::top_k(3).users(vec![7, 2, 7]))
            .unwrap();
        assert_eq!(ids.results.len(), 3);
        assert_eq!(ids.results[0], ids.results[2]);
        assert_eq!(ids.results[1], all.results[2]);
    }

    #[test]
    fn threads_are_invisible_to_results() {
        let m = model(61, 40);
        let sequential = EngineBuilder::new()
            .model(Arc::clone(&m))
            .with_default_backends()
            .build()
            .unwrap();
        let threaded = EngineBuilder::new()
            .model(m)
            .with_default_backends()
            .threads(4)
            .build()
            .unwrap();
        for request in [
            QueryRequest::top_k(4),
            QueryRequest::top_k(4).users_range(3..49),
            QueryRequest::top_k(4).users(vec![0, 60, 17, 17, 33]),
        ] {
            let a = sequential.execute_with("maximus", &request).unwrap();
            let b = threaded.execute_with("maximus", &request).unwrap();
            assert_eq!(a.results, b.results);
        }
    }

    #[test]
    fn exclusions_remove_rated_items_exactly() {
        let m = model(12, 25);
        let engine = EngineBuilder::new()
            .model(Arc::clone(&m))
            .with_default_backends()
            .build()
            .unwrap();
        let baseline = engine.execute_with("bmm", &QueryRequest::top_k(6)).unwrap();
        // Exclude user 3's top two items and user 5's top item.
        let mut exclusions = ExclusionSet::new();
        exclusions.insert(3, baseline.results[3].items[0]);
        exclusions.insert(3, baseline.results[3].items[1]);
        exclusions.insert(5, baseline.results[5].items[0]);
        let request = QueryRequest::top_k(6).exclude(exclusions.clone());
        for key in engine.backend_keys() {
            let response = engine.execute_with(key, &request).unwrap();
            // Excluded items are gone, results still k-long and sorted.
            for (u, list) in response.results.iter().enumerate() {
                assert_eq!(list.len(), 6, "{key} user {u}");
                assert!(list.is_sorted() || list.len() < 2);
                for item in &list.items {
                    assert!(
                        !exclusions.for_user(u).contains(item),
                        "{key} user {u} still sees excluded item {item}"
                    );
                }
            }
            // User 3's filtered top-6 = unfiltered ranks 3..=8.
            let widened = engine.execute_with("bmm", &QueryRequest::top_k(8)).unwrap();
            assert_eq!(response.results[3].items, widened.results[3].items[2..8]);
            assert_eq!(
                response.results[5].items[..5],
                baseline.results[5].items[1..6]
            );
            // Untouched users are unchanged.
            assert_eq!(response.results[0].items, baseline.results[0].items);
        }
    }

    #[test]
    fn power_user_exclusions_stay_exact_without_widening_the_batch() {
        // One user excludes far more items than the bulk-widening cap
        // (32 for small k): the engine must re-serve that user individually
        // and still return the exact filtered top-k for everyone.
        let m = model(10, 100);
        let engine = EngineBuilder::new()
            .model(Arc::clone(&m))
            .with_default_backends()
            .build()
            .unwrap();
        let full = engine
            .execute_with("bmm", &QueryRequest::top_k(100))
            .unwrap();
        // User 4 excludes their top 50 items; user 6 excludes their top 2.
        let mut exclusions = ExclusionSet::new();
        for &item in &full.results[4].items[..50] {
            exclusions.insert(4, item);
        }
        exclusions.insert(6, full.results[6].items[0]);
        exclusions.insert(6, full.results[6].items[1]);
        let request = QueryRequest::top_k(4).exclude(exclusions);
        for key in engine.backend_keys() {
            let response = engine.execute_with(key, &request).unwrap();
            // Expected answers come straight off the full ranking.
            assert_eq!(
                response.results[4].items,
                full.results[4].items[50..54],
                "{key} power user"
            );
            assert_eq!(
                response.results[6].items,
                full.results[6].items[2..6],
                "{key} light user"
            );
            assert_eq!(
                response.results[0].items,
                full.results[0].items[..4],
                "{key} untouched user"
            );
        }
    }

    #[test]
    fn exclusions_near_catalog_size_shrink_results_without_error() {
        let m = model(4, 6);
        let engine = EngineBuilder::new()
            .model(m)
            .register(BmmFactory)
            .build()
            .unwrap();
        // Exclude all but one item for user 0 and ask for top-3: only one
        // item remains eligible.
        let exclusions = ExclusionSet::from_pairs((0..5u32).map(|i| (0usize, i)));
        let response = engine
            .execute_with("bmm", &QueryRequest::top_k(3).exclude(exclusions))
            .unwrap();
        assert_eq!(response.results[0].items, vec![5]);
        assert_eq!(response.results[1].len(), 3);
    }

    #[test]
    fn plans_are_cached_per_k_and_reused() {
        let engine = engine(120, 60);
        assert_eq!(engine.planner_runs(), 0);
        let first = engine.execute(&QueryRequest::top_k(5)).unwrap();
        assert!(first.planned);
        assert_eq!(engine.planner_runs(), 1);
        let second = engine
            .execute(&QueryRequest::top_k(5).users_range(0..40))
            .unwrap();
        assert_eq!(engine.planner_runs(), 1, "same k must not re-plan");
        assert_eq!(second.backend, first.backend);
        let _ = engine.execute(&QueryRequest::top_k(2)).unwrap();
        assert_eq!(engine.planner_runs(), 2, "new k plans once");
        let plan = engine.prepare(5).unwrap();
        assert_eq!(plan.planned_k(), 5);
        assert!(plan.estimates().len() == engine.backend_keys().len());
        assert!(plan.sample_size() >= 2);
    }

    #[test]
    fn planner_reference_is_the_batch_backend_regardless_of_registration_order() {
        // A point-query backend registered first must not become the
        // t-test timing reference: the planner samples the first
        // batch-capable backend first.
        let engine = EngineBuilder::new()
            .model(model(120, 60))
            .register(FexiproFactory::si())
            .register(BmmFactory)
            .optimus(tiny_optimus())
            .build()
            .unwrap();
        let plan = engine.prepare(3).unwrap();
        assert_eq!(plan.estimates()[0].name, "Blocked MM");
        assert_eq!(plan.estimates().len(), 2);
        assert!(["bmm", "fexipro-si"].contains(&plan.backend_key()));
    }

    #[test]
    fn single_backend_engine_skips_sampling() {
        let engine = EngineBuilder::new()
            .model(model(20, 30))
            .register(BmmFactory)
            .build()
            .unwrap();
        let plan = engine.prepare(4).unwrap();
        assert_eq!(plan.sample_size(), 0);
        assert_eq!(plan.backend_key(), "bmm");
        assert!(plan.estimates().is_empty());
        let response = plan.execute(&QueryRequest::top_k(4)).unwrap();
        assert_eq!(response.results.len(), 20);
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        let engine = engine(10, 20);
        let bad = [
            QueryRequest::top_k(0),
            QueryRequest::top_k(21),
            QueryRequest::top_k(usize::MAX),
            QueryRequest::top_k(3).users(vec![10]),
            QueryRequest::top_k(3).users(vec![0, usize::MAX]),
            QueryRequest::top_k(3).users(Vec::new()),
            QueryRequest::top_k(3).users_range(7..7),
            QueryRequest::top_k(3).users_range(8..12),
        ];
        for request in &bad {
            assert!(engine.execute(request).is_err(), "{request:?}");
            assert!(engine.execute_with("bmm", request).is_err(), "{request:?}");
        }
        assert_eq!(
            engine
                .execute_with("nope", &QueryRequest::top_k(1))
                .unwrap_err(),
            MipsError::UnknownBackend { key: "nope".into() }
        );
        assert_eq!(
            engine.prepare(0).unwrap_err(),
            MipsError::InvalidK {
                k: 0,
                num_items: 20
            }
        );
    }

    #[test]
    fn swap_model_installs_a_new_epoch_and_serves_it() {
        let a = model(30, 40);
        let b = Arc::new(synth_model(&SynthConfig {
            num_users: 30,
            num_items: 40,
            num_factors: 8,
            seed: 99,
            ..SynthConfig::default()
        }));
        let engine = EngineBuilder::new()
            .model(Arc::clone(&a))
            .register(BmmFactory)
            .build()
            .unwrap();
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.swap_count(), 0);
        let on_a = engine.execute(&QueryRequest::top_k(4)).unwrap();
        assert_eq!(on_a.epoch, 0);

        let new_epoch = engine.swap_model(Arc::clone(&b)).unwrap();
        assert_eq!(new_epoch, 1);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.swap_count(), 1);
        let on_b = engine.execute(&QueryRequest::top_k(4)).unwrap();
        assert_eq!(on_b.epoch, 1);

        // The swapped engine serves exactly what a fresh engine on the new
        // model serves.
        let reference = EngineBuilder::new()
            .model(b)
            .register(BmmFactory)
            .build()
            .unwrap();
        assert_eq!(
            on_b.results,
            reference.execute(&QueryRequest::top_k(4)).unwrap().results
        );
        assert_ne!(on_a.results, on_b.results, "distinct models must differ");
    }

    #[test]
    fn swap_resizes_the_model_and_requests_validate_against_the_new_shape() {
        let engine = EngineBuilder::new()
            .model(model(20, 30))
            .register(BmmFactory)
            .build()
            .unwrap();
        engine
            .execute(&QueryRequest::top_k(2).users(vec![19]))
            .unwrap();
        engine.swap_model(model(8, 12)).unwrap();
        // User 19 and k = 30 existed on epoch 0 but not on epoch 1.
        assert!(matches!(
            engine.execute(&QueryRequest::top_k(2).users(vec![19])),
            Err(MipsError::UserOutOfRange { user: 19, .. })
        ));
        assert!(matches!(
            engine.execute(&QueryRequest::top_k(30)),
            Err(MipsError::InvalidK { k: 30, .. })
        ));
        assert_eq!(
            engine
                .execute(&QueryRequest::top_k(12))
                .unwrap()
                .results
                .len(),
            8
        );
    }

    #[test]
    fn inflight_plans_keep_serving_their_epoch_bit_identically() {
        let a = model(40, 50);
        let engine = EngineBuilder::new()
            .model(Arc::clone(&a))
            .register(BmmFactory)
            .build()
            .unwrap();
        let request = QueryRequest::top_k(5);
        let plan = engine.prepare(5).unwrap();
        let before = plan.execute(&request).unwrap();
        engine.swap_model(model(40, 50)).unwrap();
        // The held plan is pinned to epoch 0: same model, same results.
        assert_eq!(plan.epoch(), 0);
        let after = plan.execute(&request).unwrap();
        assert_eq!(after.results, before.results);
        assert_eq!(after.epoch, 0);
        // A fresh execute plans on the new epoch.
        assert_eq!(engine.execute(&request).unwrap().epoch, 1);
    }

    #[test]
    fn each_epoch_plans_once_and_old_epochs_are_reclaimed() {
        let engine = engine(60, 40);
        engine.execute(&QueryRequest::top_k(3)).unwrap();
        engine.execute(&QueryRequest::top_k(3)).unwrap();
        assert_eq!(engine.planner_runs(), 1);
        let old_model = engine.model();
        let weak = Arc::downgrade(&old_model);
        drop(old_model);
        engine.swap_model(model(60, 40)).unwrap();
        engine.execute(&QueryRequest::top_k(3)).unwrap();
        assert_eq!(engine.planner_runs(), 2, "the new epoch plans afresh");
        // Nothing still references epoch 0: its model, solvers, and plans
        // all dropped with the epoch.
        assert!(
            weak.upgrade().is_none(),
            "old epoch must be unreachable after the swap"
        );
    }

    #[test]
    fn non_finite_models_are_rejected_at_build_and_swap() {
        use mips_linalg::Matrix;
        let nan_users = Matrix::from_vec(2, 2, vec![1.0, f64::NAN, 0.0, 1.0]).unwrap();
        let items = Matrix::from_vec(3, 2, vec![1.0; 6]).unwrap();
        let bad = Arc::new(MfModel::new_unvalidated("nan", nan_users, items));
        assert!(matches!(
            EngineBuilder::new()
                .model(Arc::clone(&bad))
                .register(BmmFactory)
                .build(),
            Err(MipsError::InvalidConfig(msg)) if msg.contains("non-finite")
        ));
        let engine = engine(10, 10);
        assert!(matches!(
            engine.swap_model(bad),
            Err(MipsError::InvalidConfig(msg)) if msg.contains("non-finite")
        ));
        let inf_items = Matrix::from_vec(2, 2, vec![1.0, 2.0, f64::INFINITY, 0.5]).unwrap();
        let users = Matrix::from_vec(2, 2, vec![1.0; 4]).unwrap();
        let bad_items = Arc::new(MfModel::new_unvalidated("inf", users, inf_items));
        assert!(engine.swap_model(bad_items).is_err());
        // A failed swap leaves the serving epoch untouched.
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.swap_count(), 0);
        assert!(engine.execute(&QueryRequest::top_k(2)).is_ok());
    }

    #[test]
    fn factor_width_mismatch_is_rejected_at_build_and_swap() {
        use mips_linalg::Matrix;
        // Users have 4 factors, items only 2: the dot kernels must never
        // see these rows, so both intake points reject with a typed error.
        let mismatched = Arc::new(MfModel::new_unvalidated(
            "ragged",
            Matrix::from_vec(2, 4, vec![0.5; 8]).unwrap(),
            Matrix::from_vec(3, 2, vec![0.5; 6]).unwrap(),
        ));
        assert!(matches!(
            EngineBuilder::new()
                .model(Arc::clone(&mismatched))
                .register(BmmFactory)
                .build(),
            Err(MipsError::InvalidConfig(msg)) if msg.contains("factors")
        ));
        let engine = engine(10, 10);
        assert!(matches!(
            engine.swap_model(mismatched),
            Err(MipsError::InvalidConfig(msg)) if msg.contains("factors")
        ));
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn swap_rejects_empty_models() {
        use mips_linalg::Matrix;
        let engine = engine(10, 10);
        let empty = Arc::new(MfModel::new_unvalidated(
            "empty",
            Matrix::<f64>::zeros(0, 2),
            Matrix::<f64>::zeros(3, 2),
        ));
        assert_eq!(engine.swap_model(empty).unwrap_err(), MipsError::EmptyModel);
    }

    #[test]
    fn shard_plans_cache_by_bounds_and_count_local_builds() {
        let engine = engine(60, 40);
        let state = engine.snapshot();
        let mut stats = ShardBuildStats::default();
        let plan = engine
            .prepare_shard_on(&state, &(0..30), 4, IndexScope::PerShard, &mut stats)
            .unwrap();
        assert_eq!(plan.shard_users(), Some(0..30));
        assert!(plan.uses_local_index());
        assert_eq!(plan.epoch(), 0);
        assert_eq!(stats.builds, 6, "six default backends built for the shard");
        assert!(stats.build_ns > 0);
        assert_eq!(plan.estimates().len(), 6);
        assert!(plan.analytical_bmm_seconds() > 0.0);

        // Same bounds + k: cache hit, no construction, same plan instance.
        let mut again_stats = ShardBuildStats::default();
        let again = engine
            .prepare_shard_on(&state, &(0..30), 4, IndexScope::PerShard, &mut again_stats)
            .unwrap();
        assert!(Arc::ptr_eq(&plan, &again));
        assert_eq!(again_stats.builds, 0);

        // Same bounds, new k: solvers reused, only planning happens.
        let mut new_k_stats = ShardBuildStats::default();
        let other_k = engine
            .prepare_shard_on(&state, &(0..30), 2, IndexScope::PerShard, &mut new_k_stats)
            .unwrap();
        assert_eq!(new_k_stats.builds, 0, "shard solvers are shared across k");
        assert_eq!(other_k.planned_k(), 2);

        // Different bounds: a separate tier entry with its own builds.
        let mut other_stats = ShardBuildStats::default();
        let other = engine
            .prepare_shard_on(&state, &(30..60), 4, IndexScope::PerShard, &mut other_stats)
            .unwrap();
        assert_eq!(other_stats.builds, 6);
        assert_eq!(other.shard_users(), Some(30..60));

        // Bad k surfaces as the same typed error as global planning.
        let mut err_stats = ShardBuildStats::default();
        assert!(matches!(
            engine.prepare_shard_on(&state, &(0..30), 0, IndexScope::PerShard, &mut err_stats),
            Err(MipsError::InvalidK { k: 0, .. })
        ));
    }

    #[test]
    fn auto_shard_plans_pit_the_global_winner_against_local_candidates() {
        let engine = engine(80, 40);
        let state = engine.snapshot();
        let mut stats = ShardBuildStats::default();
        let auto = engine
            .prepare_shard_on(&state, &(0..40), 3, IndexScope::Auto, &mut stats)
            .unwrap();
        // Candidates: the global plan's winner plus one local solver per
        // registered backend.
        assert_eq!(auto.estimates().len(), engine.backend_keys().len() + 1);
        assert_eq!(stats.builds, 6);
        // Auto planning forced the global plan into existence too.
        assert!(engine.prepare(3).unwrap().shard_users().is_none());
        // The recorded decision tells whether this shard went local.
        let _went_local = auto.uses_local_index();
    }

    #[test]
    fn analytical_prior_calibrates_once_across_epochs_and_shards() {
        let engine = engine(60, 40);
        assert_eq!(engine.registry().calibration_runs(), 0);
        let plan = engine.prepare(3).unwrap();
        assert!(plan.analytical_bmm_seconds() > 0.0);
        assert_eq!(engine.registry().calibration_runs(), 1);
        // Shard plans on the same engine reuse the rate...
        let state = engine.snapshot();
        let mut stats = ShardBuildStats::default();
        let shard_plan = engine
            .prepare_shard_on(&state, &(0..30), 3, IndexScope::PerShard, &mut stats)
            .unwrap();
        assert!(shard_plan.analytical_bmm_seconds() > 0.0);
        assert!(
            shard_plan.analytical_bmm_seconds() < plan.analytical_bmm_seconds(),
            "the prior is sized to the view (half the users)"
        );
        assert_eq!(engine.registry().calibration_runs(), 1);
        // ...and so does a fresh epoch: no per-epoch recalibration.
        engine.swap_model(model(60, 40)).unwrap();
        engine.prepare(3).unwrap();
        assert_eq!(engine.registry().calibration_runs(), 1);
    }

    #[test]
    fn forced_f32_rescore_serves_bit_identically_and_reports_precision() {
        let m = model(40, 120);
        let f64_engine = EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(BmmFactory)
            .build()
            .unwrap();
        let f32_engine = EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(BmmFactory)
            .precision(Precision::F32Rescore)
            .build()
            .unwrap();
        let request = QueryRequest::top_k(5);
        let want = f64_engine.execute(&request).unwrap();
        let got = f32_engine.execute(&request).unwrap();
        assert_eq!(want.precision, Precision::F64);
        assert_eq!(got.precision, Precision::F32Rescore);
        assert_eq!(got.backend, "Blocked MM+f32");
        for (g, w) in got.results.iter().zip(&want.results) {
            assert_eq!(g.items, w.items);
            for (a, b) in g.scores.iter().zip(&w.scores) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // The plan records the effective mode too.
        assert_eq!(
            f32_engine.prepare(5).unwrap().precision(),
            Precision::F32Rescore
        );
    }

    #[test]
    fn forced_f32_rescore_on_screenless_backend_degrades_to_f64() {
        let engine = EngineBuilder::new()
            .model(model(20, 40))
            .register(FexiproFactory::si())
            .precision(Precision::F32Rescore)
            .build()
            .unwrap();
        let response = engine.execute(&QueryRequest::top_k(3)).unwrap();
        // FEXIPRO has no screen path: the request is served f64-direct
        // and the response says so.
        assert_eq!(response.precision, Precision::F64);
        assert_eq!(response.backend, "FEXIPRO-SI");
    }

    #[test]
    fn screen_winner_within_margin_is_demoted_to_its_f64_base() {
        let estimate = |name: &str, secs: f64| crate::optimus::StrategyEstimate {
            name: name.to_string(),
            build_seconds: 0.0,
            sampled_users: 8,
            sample_seconds: secs / 10.0,
            estimated_total_seconds: secs,
        };
        // Screen barely ahead of its base (within the noise margin): the
        // exact-direct incumbent keeps the plan.
        let noisy = [estimate("LEMP", 1.00), estimate("LEMP+f32", 0.95)];
        assert_eq!(demote_marginal_screen_winner(&noisy, 1), Some(0));
        // Screen clearly faster than the margin: adoption stands.
        let clear = [estimate("LEMP", 1.00), estimate("LEMP+f32", 0.60)];
        assert_eq!(demote_marginal_screen_winner(&clear, 1), None);
        // Exactly at the margin boundary counts as clearly faster (the
        // demotion predicate is strict).
        let edge = [
            estimate("LEMP", 1.00),
            estimate("LEMP+f32", SCREEN_ADOPTION_MARGIN),
        ];
        assert_eq!(demote_marginal_screen_winner(&edge, 1), None);
        // Sub-millisecond requests: even a clear relative win saves less
        // absolute time than the noise floor — the incumbent keeps it.
        let tiny = [estimate("LEMP", 900e-6), estimate("LEMP+f32", 500e-6)];
        assert_eq!(demote_marginal_screen_winner(&tiny, 1), Some(0));
        // Forced-f32 mode: screens run under plain keys, so a suffixed
        // winner has no base twin — nothing to demote to.
        let forced = [estimate("Blocked MM", 1.0), estimate("Maximus+f32", 0.99)];
        assert_eq!(demote_marginal_screen_winner(&forced, 1), None);
        // The int8 tier rides the same adoption discipline: marginal `+i8`
        // winners demote to their f64 base, clear wins stand, and an i8
        // winner never demotes to the `+f32` sibling (the base is the
        // plain key, not the other screen tier).
        let noisy_i8 = [estimate("LEMP", 1.00), estimate("LEMP+i8", 0.95)];
        assert_eq!(demote_marginal_screen_winner(&noisy_i8, 1), Some(0));
        let clear_i8 = [estimate("LEMP", 1.00), estimate("LEMP+i8", 0.60)];
        assert_eq!(demote_marginal_screen_winner(&clear_i8, 1), None);
        let three_way = [
            estimate("LEMP", 1.00),
            estimate("LEMP+f32", 0.70),
            estimate("LEMP+i8", 0.95),
        ];
        assert_eq!(demote_marginal_screen_winner(&three_way, 2), Some(0));
    }

    #[test]
    fn auto_mode_competes_screen_variants_as_extra_candidates() {
        let engine = EngineBuilder::new()
            .model(model(60, 80))
            .with_default_backends()
            .optimus(tiny_optimus())
            .precision(Precision::Auto)
            .build()
            .unwrap();
        let plan = engine.prepare(4).unwrap();
        // 5 registry backends + 2 screen tiers × 3 screening backends
        // (bmm, maximus, lemp).
        assert_eq!(plan.estimates().len(), engine.registry().keys().len() + 6);
        let names: Vec<&str> = plan.estimates().iter().map(|e| e.name.as_str()).collect();
        for screened in [
            "Blocked MM+f32",
            "Maximus+f32",
            "LEMP+f32",
            "Blocked MM+i8",
            "Maximus+i8",
            "LEMP+i8",
        ] {
            assert!(names.contains(&screened), "{screened} missing in {names:?}");
        }
        // Whatever Auto picked, results match the pure-f64 engine's winner
        // item-for-item (scores are backend-reduction-specific, so compare
        // membership here; bit-identity per backend is covered elsewhere).
        let request = QueryRequest::top_k(4);
        let auto = plan.execute(&request).unwrap();
        let f64_engine = EngineBuilder::new()
            .model(model(60, 80))
            .register(BmmFactory)
            .build()
            .unwrap();
        let want = f64_engine.execute(&request).unwrap();
        for (g, w) in auto.results.iter().zip(&want.results) {
            assert_eq!(g.items, w.items);
        }
        // A screen candidate competed, so the f32 analytical prior is
        // recorded alongside the f64 one.
        assert!(plan.analytical_screen_seconds() > 0.0);
        assert!(plan.analytical_bmm_seconds() > 0.0);
    }

    #[test]
    fn named_dispatch_under_forced_f32_uses_the_screen_variant() {
        let engine = EngineBuilder::new()
            .model(model(30, 90))
            .with_default_backends()
            .optimus(tiny_optimus())
            .precision(Precision::F32Rescore)
            .build()
            .unwrap();
        let request = QueryRequest::top_k(3);
        for (key, name) in [
            ("bmm", "Blocked MM+f32"),
            ("lemp", "LEMP+f32"),
            ("maximus", "Maximus+f32"),
        ] {
            let response = engine.execute_with(key, &request).unwrap();
            assert_eq!(response.backend, name);
            assert_eq!(response.precision, Precision::F32Rescore, "{key}");
        }
        // Screenless backends still answer, f64-direct.
        let fex = engine.execute_with("fexipro-si", &request).unwrap();
        assert_eq!(fex.precision, Precision::F64);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = Arc::new(engine(50, 40));
        crate::sync::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let response = engine.execute(&QueryRequest::top_k(3)).unwrap();
                    assert_eq!(response.results.len(), 50);
                });
            }
        });
        // Concurrent first touches at one k may race the planner (builds
        // install compare-and-swap style rather than convoying behind one
        // lock), but the cache settles on a single plan...
        let racers = engine.planner_runs();
        assert!((1..=4).contains(&racers), "{racers} planner runs");
        // ...so a later execute at the same k never plans again.
        engine.execute(&QueryRequest::top_k(3)).unwrap();
        assert_eq!(engine.planner_runs(), racers);
    }
}
