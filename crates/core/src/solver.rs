//! The common solver interface and the legacy strategy enum.
//!
//! [`Strategy`] predates the [`crate::engine`] facade and is kept as a thin
//! **deprecated** compatibility shim: each variant maps to a registry key,
//! and its construction methods are deprecated in favor of registering
//! backends with [`crate::engine::BackendRegistry`] (or passing
//! [`SolverFactory`] values directly to OPTIMUS and the oracle).

use crate::engine::registry::{
    BmmFactory, FexiproFactory, LempFactory, MaximusFactory, SolverFactory,
};
use crate::maximus::MaximusConfig;
use crate::precision::Precision;
use crate::sync::Arc;
use mips_data::MfModel;
use mips_lemp::LempConfig;
use mips_topk::TopKList;
use std::collections::HashMap;
use std::ops::Range;

/// A built, queryable exact MIPS solver.
///
/// Implementations hold their model in an [`Arc`] and are immutable after
/// construction, so they can be queried concurrently (the multi-core
/// experiments of Fig. 6 partition users across threads).
pub trait MipsSolver: Send + Sync {
    /// Human-readable name used in benchmark tables
    /// (`"Blocked MM"`, `"Maximus"`, `"LEMP"`, `"FEXIPRO-SI"`, …).
    fn name(&self) -> &str;

    /// Wall-clock seconds spent building this solver (index construction;
    /// ~0 for brute force). Fig. 4 compares this against serving time.
    fn build_seconds(&self) -> f64;

    /// `true` if the solver shares work across users in a batch (BMM,
    /// MAXIMUS). OPTIMUS may only apply its per-user t-test early stopping
    /// to solvers that return `false` (§IV-A).
    fn batches_users(&self) -> bool;

    /// Number of users of the underlying model.
    fn num_users(&self) -> usize;

    /// Top-k for a contiguous user range, in order.
    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList>;

    /// Top-k for an explicit list of user ids, in input order.
    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList>;

    /// Top-k for every user.
    fn query_all(&self, k: usize) -> Vec<TopKList> {
        self.query_range(k, 0..self.num_users())
    }

    /// The numeric path this solver serves through: [`Precision::F32Rescore`]
    /// when scans screen in f32 before the exact f64 rescore, otherwise
    /// [`Precision::F64`]. Results are bit-identical either way; the engine
    /// records the effective value on prepared plans and responses.
    fn precision(&self) -> Precision {
        Precision::F64
    }

    /// Exact top-k for an *ad-hoc* query vector — one that is not a stored
    /// user row (a fresh embedding, a composed query, a densified sparse
    /// payload). `None` (the default) means the backend has no point-lookup
    /// path and the engine falls back to its canonical scan.
    ///
    /// Implementations must be bit-identical to pushing every item's
    /// [`mips_linalg::kernels::dot_gemm_ordered`] score into a
    /// [`mips_topk::TopKHeap`] — the same contract as user queries.
    fn query_vector(&self, _query: &[f64], _k: usize) -> Option<TopKList> {
        None
    }

    /// Drains the solver's cumulative mixed-precision screen counters:
    /// everything screened and rescored since the last drain, across all
    /// threads. `None` (the default) for solvers without a screen path; a
    /// screening solver returns `Some` even when the drained counts are
    /// zero. The serving layer calls this after every batch and folds the
    /// tallies into the shard's per-mode candidate/survivor counters, so
    /// under concurrency a drain may attribute another in-flight batch's
    /// work to this one — per-batch attribution is approximate, but no
    /// count is ever lost or double-counted and the shard totals stay
    /// exact.
    fn take_screen_stats(&self) -> Option<ScreenTally> {
        None
    }
}

/// One drain's worth of mixed-precision screen work (f32 or int8 tier —
/// the solver's [`MipsSolver::precision`] says which).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenTally {
    /// Scores the screen evaluated (candidates it could have pruned).
    pub screened: u64,
    /// Candidates that survived the envelope test and were rescored with
    /// an exact f64 dot. `screened - rescored` exact dots were skipped.
    pub rescored: u64,
}

/// Lock-free cells behind [`MipsSolver::take_screen_stats`]: screening
/// solvers accumulate into these from their scan kernels and the serving
/// layer drains them batch by batch.
#[derive(Debug, Default)]
pub struct ScreenTallyCells {
    screened: crate::sync::atomic::AtomicU64,
    rescored: crate::sync::atomic::AtomicU64,
}

impl ScreenTallyCells {
    /// Adds one scan's counts.
    pub fn record(&self, screened: u64, rescored: u64) {
        use crate::sync::atomic::Ordering;
        if screened > 0 {
            self.screened.fetch_add(screened, Ordering::Relaxed);
        }
        if rescored > 0 {
            self.rescored.fetch_add(rescored, Ordering::Relaxed);
        }
    }

    /// Takes everything recorded since the last drain, resetting to zero.
    pub fn drain(&self) -> ScreenTally {
        use crate::sync::atomic::Ordering;
        ScreenTally {
            screened: self.screened.swap(0, Ordering::Relaxed),
            rescored: self.rescored.swap(0, Ordering::Relaxed),
        }
    }
}

/// Runs a subset query with repeated user ids deduplicated: each distinct
/// user is queried once (preserving first-occurrence order) and results are
/// fanned back out in input order.
///
/// Solver implementations wrap their gather in this so a request like
/// `[7, 2, 7]` does the work of two queries, not three.
pub fn dedup_query_subset(
    users: &[usize],
    query_distinct: impl FnOnce(&[usize]) -> Vec<TopKList>,
) -> Vec<TopKList> {
    if users.len() < 2 {
        // Point queries (the optimizer's t-test loop, single-user requests)
        // skip the bookkeeping entirely.
        return query_distinct(users);
    }
    let mut first_pos: HashMap<usize, usize> = HashMap::with_capacity(users.len());
    let mut distinct: Vec<usize> = Vec::with_capacity(users.len());
    for &u in users {
        first_pos.entry(u).or_insert_with(|| {
            distinct.push(u);
            distinct.len() - 1
        });
    }
    if distinct.len() == users.len() {
        // No repeats (the common case): query directly — one hash pass of
        // overhead, no fan-out clones.
        return query_distinct(users);
    }
    let results = query_distinct(&distinct);
    debug_assert_eq!(results.len(), distinct.len());
    users
        .iter()
        .map(|u| results[first_pos[u]].clone())
        .collect()
}

/// A buildable serving strategy: the legacy unit OPTIMUS chose between.
///
/// Deprecated as a construction path: the optimizer, oracle, and benchmark
/// harness now take [`SolverFactory`] values (the engine's
/// [`crate::engine::BackendRegistry`] namespace). `Strategy` remains as a
/// thin alias — [`Strategy::key`] and [`Strategy::factory`] bridge old
/// call sites onto the registry.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Brute-force blocked matrix multiply.
    Bmm,
    /// The MAXIMUS index with the given parameters.
    Maximus(MaximusConfig),
    /// The LEMP baseline with the given parameters.
    Lemp(LempConfig),
    /// FEXIPRO with SVD + integer pruning.
    FexiproSi,
    /// FEXIPRO with all pruning stages.
    FexiproSir,
}

impl Strategy {
    /// The display name the built solver will report.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Bmm => "Blocked MM",
            Strategy::Maximus(_) => "Maximus",
            Strategy::Lemp(_) => "LEMP",
            Strategy::FexiproSi => "FEXIPRO-SI",
            Strategy::FexiproSir => "FEXIPRO-SIR",
        }
    }

    /// The registry key this strategy maps to (the engine's backend
    /// namespace: `"bmm"`, `"maximus"`, `"lemp"`, `"fexipro-si"`,
    /// `"fexipro-sir"`).
    pub fn key(&self) -> &'static str {
        match self {
            Strategy::Bmm => "bmm",
            Strategy::Maximus(_) => "maximus",
            Strategy::Lemp(_) => "lemp",
            Strategy::FexiproSi => "fexipro-si",
            Strategy::FexiproSir => "fexipro-sir",
        }
    }

    /// The engine factory equivalent to this strategy, carrying its
    /// configuration.
    pub fn factory(&self) -> Arc<dyn SolverFactory> {
        match self {
            Strategy::Bmm => Arc::new(BmmFactory),
            Strategy::Maximus(cfg) => Arc::new(MaximusFactory::new(*cfg)),
            Strategy::Lemp(cfg) => Arc::new(LempFactory::new(*cfg)),
            Strategy::FexiproSi => Arc::new(FexiproFactory::si()),
            Strategy::FexiproSir => Arc::new(FexiproFactory::sir()),
        }
    }

    /// Builds the solver through the registry factory (index construction
    /// happens here and is timed by the implementations).
    ///
    /// Compatibility path: panics if construction fails. Register the
    /// backend with a [`crate::engine::BackendRegistry`] (or call
    /// [`SolverFactory::build`] via [`Strategy::factory`]) for typed errors.
    #[deprecated(
        since = "0.1.0",
        note = "build through the engine's BackendRegistry / SolverFactory instead"
    )]
    pub fn build(&self, model: &Arc<MfModel>) -> Box<dyn MipsSolver> {
        self.factory()
            .build(model)
            .unwrap_or_else(|err| panic!("Strategy::build({}): {err}", self.name()))
    }

    /// `build` over a contiguous user-range view of a model (shard-local
    /// index construction). The produced solver addresses users by local
    /// row (`0..view.num_users()`).
    #[deprecated(
        since = "0.1.0",
        note = "build through the engine's BackendRegistry / SolverFactory instead"
    )]
    pub fn build_over(&self, view: &mips_data::ModelView) -> Box<dyn MipsSolver> {
        self.factory()
            .build_view(view)
            .unwrap_or_else(|err| panic!("Strategy::build_over({}): {err}", self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};

    #[test]
    fn dedup_subset_queries_each_distinct_user_once() {
        use std::cell::Cell;
        let queried = Cell::new(0usize);
        let out = dedup_query_subset(&[7, 2, 7, 7, 2], |distinct| {
            assert_eq!(distinct, &[7, 2]);
            queried.set(distinct.len());
            distinct
                .iter()
                .map(|&u| TopKList {
                    items: vec![u as u32],
                    scores: vec![u as f64],
                })
                .collect()
        });
        assert_eq!(queried.get(), 2);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[0], out[3]);
        assert_eq!(out[1], out[4]);
        assert_eq!(out[0].items, vec![7]);
        assert_eq!(out[1].items, vec![2]);
    }

    #[test]
    fn dedup_subset_passes_distinct_input_through() {
        let out = dedup_query_subset(&[3, 1, 4], |distinct| {
            assert_eq!(distinct, &[3, 1, 4]);
            distinct.iter().map(|_| TopKList::empty()).collect()
        });
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn strategy_keys_match_registry_defaults() {
        use crate::engine::BackendRegistry;
        let registry = BackendRegistry::with_defaults();
        for strategy in [
            Strategy::Bmm,
            Strategy::Maximus(MaximusConfig::default()),
            Strategy::Lemp(LempConfig::default()),
            Strategy::FexiproSi,
            Strategy::FexiproSir,
        ] {
            assert!(
                registry.get(strategy.key()).is_some(),
                "{} should resolve in the default registry",
                strategy.key()
            );
            assert_eq!(strategy.factory().key(), strategy.key());
        }
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Bmm.name(), "Blocked MM");
        assert_eq!(
            Strategy::Maximus(MaximusConfig::default()).name(),
            "Maximus"
        );
        assert_eq!(Strategy::Lemp(LempConfig::default()).name(), "LEMP");
        assert_eq!(Strategy::FexiproSi.name(), "FEXIPRO-SI");
        assert_eq!(Strategy::FexiproSir.name(), "FEXIPRO-SIR");
    }

    #[test]
    #[allow(deprecated)] // the compat path stays covered until it is removed
    fn every_strategy_builds_and_answers() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 25,
            num_items: 40,
            num_factors: 8,
            ..SynthConfig::default()
        }));
        for strategy in [
            Strategy::Bmm,
            Strategy::Maximus(MaximusConfig::default()),
            Strategy::Lemp(LempConfig::default()),
            Strategy::FexiproSi,
            Strategy::FexiproSir,
        ] {
            let solver = strategy.build(&model);
            assert_eq!(solver.name(), strategy.name());
            assert_eq!(solver.num_users(), 25);
            let all = solver.query_all(3);
            assert_eq!(all.len(), 25);
            for list in &all {
                assert_eq!(list.len(), 3);
                assert!(list.is_sorted());
            }
            // Subset order must follow the input, not user order.
            let subset = solver.query_subset(2, &[7, 2, 7]);
            assert_eq!(subset.len(), 3);
            assert_eq!(subset[0], subset[2]);
            assert_eq!(subset[1], solver.query_range(2, 2..3)[0]);
        }
    }
}
