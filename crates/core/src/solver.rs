//! The common solver interface and the strategy factory.

use crate::adapters::{FexiproSolver, LempSolver};
use crate::bmm::BmmSolver;
use crate::maximus::{MaximusConfig, MaximusIndex};
use mips_data::MfModel;
use mips_fexipro::FexiproConfig;
use mips_lemp::LempConfig;
use mips_topk::TopKList;
use std::ops::Range;
use std::sync::Arc;

/// A built, queryable exact MIPS solver.
///
/// Implementations hold their model in an [`Arc`] and are immutable after
/// construction, so they can be queried concurrently (the multi-core
/// experiments of Fig. 6 partition users across threads).
pub trait MipsSolver: Send + Sync {
    /// Human-readable name used in benchmark tables
    /// (`"Blocked MM"`, `"Maximus"`, `"LEMP"`, `"FEXIPRO-SI"`, …).
    fn name(&self) -> &str;

    /// Wall-clock seconds spent building this solver (index construction;
    /// ~0 for brute force). Fig. 4 compares this against serving time.
    fn build_seconds(&self) -> f64;

    /// `true` if the solver shares work across users in a batch (BMM,
    /// MAXIMUS). OPTIMUS may only apply its per-user t-test early stopping
    /// to solvers that return `false` (§IV-A).
    fn batches_users(&self) -> bool;

    /// Number of users of the underlying model.
    fn num_users(&self) -> usize;

    /// Top-k for a contiguous user range, in order.
    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList>;

    /// Top-k for an explicit list of user ids, in input order.
    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList>;

    /// Top-k for every user.
    fn query_all(&self, k: usize) -> Vec<TopKList> {
        self.query_range(k, 0..self.num_users())
    }
}

/// A buildable serving strategy: the unit OPTIMUS chooses between.
///
/// `Strategy` is cheap to copy around and fully describes how to construct a
/// solver for a model, which is exactly what the optimizer and the benchmark
/// harness need.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Brute-force blocked matrix multiply.
    Bmm,
    /// The MAXIMUS index with the given parameters.
    Maximus(MaximusConfig),
    /// The LEMP baseline with the given parameters.
    Lemp(LempConfig),
    /// FEXIPRO with SVD + integer pruning.
    FexiproSi,
    /// FEXIPRO with all pruning stages.
    FexiproSir,
}

impl Strategy {
    /// The display name the built solver will report.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Bmm => "Blocked MM",
            Strategy::Maximus(_) => "Maximus",
            Strategy::Lemp(_) => "LEMP",
            Strategy::FexiproSi => "FEXIPRO-SI",
            Strategy::FexiproSir => "FEXIPRO-SIR",
        }
    }

    /// Builds the solver (index construction happens here and is timed by
    /// the implementations).
    pub fn build(&self, model: &Arc<MfModel>) -> Box<dyn MipsSolver> {
        match self {
            Strategy::Bmm => Box::new(BmmSolver::build(Arc::clone(model))),
            Strategy::Maximus(cfg) => Box::new(MaximusIndex::build(Arc::clone(model), cfg)),
            Strategy::Lemp(cfg) => Box::new(LempSolver::build(Arc::clone(model), cfg)),
            Strategy::FexiproSi => {
                Box::new(FexiproSolver::build(Arc::clone(model), &FexiproConfig::si()))
            }
            Strategy::FexiproSir => Box::new(FexiproSolver::build(
                Arc::clone(model),
                &FexiproConfig::sir(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Bmm.name(), "Blocked MM");
        assert_eq!(Strategy::Maximus(MaximusConfig::default()).name(), "Maximus");
        assert_eq!(Strategy::Lemp(LempConfig::default()).name(), "LEMP");
        assert_eq!(Strategy::FexiproSi.name(), "FEXIPRO-SI");
        assert_eq!(Strategy::FexiproSir.name(), "FEXIPRO-SIR");
    }

    #[test]
    fn every_strategy_builds_and_answers() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 25,
            num_items: 40,
            num_factors: 8,
            ..SynthConfig::default()
        }));
        for strategy in [
            Strategy::Bmm,
            Strategy::Maximus(MaximusConfig::default()),
            Strategy::Lemp(LempConfig::default()),
            Strategy::FexiproSi,
            Strategy::FexiproSir,
        ] {
            let solver = strategy.build(&model);
            assert_eq!(solver.name(), strategy.name());
            assert_eq!(solver.num_users(), 25);
            let all = solver.query_all(3);
            assert_eq!(all.len(), 25);
            for list in &all {
                assert_eq!(list.len(), 3);
                assert!(list.is_sorted());
            }
            // Subset order must follow the input, not user order.
            let subset = solver.query_subset(2, &[7, 2, 7]);
            assert_eq!(subset.len(), 3);
            assert_eq!(subset[0], subset[2]);
            assert_eq!(subset[1], solver.query_range(2, 2..3)[0]);
        }
    }
}
