fn main() {
    // Declare the model-check cfg so `#[cfg(mips_model_check)]` does not
    // trip the `unexpected_cfgs` lint on modern toolchains. The key is
    // unknown to very old cargo (pre-1.80), which only warns — keeping
    // the pinned-MSRV CI job green.
    println!("cargo:rustc-check-cfg=cfg(mips_model_check)");
}
