//! The `IndexScope` comparison mode: shard-local index construction must
//! be **invisible in the results**.
//!
//! The load-bearing contract: whatever the scope — one global solver set
//! (`Global`), per-shard indexes built over each shard's user view
//! (`PerShard`), or a per-shard OPTIMUS choice (`Auto`) — every response is
//! bit-identical to the sequential global engine on the same model: same
//! candidates, same tie-breaks, same score bits. The suite proves it per
//! backend family (each built-in's shard-local build is bit-compatible
//! with its global build), exercises the per-shard cache tier's laziness
//! and reclamation, and pins the warm path: concurrent first-touch builds
//! must not convoy behind one lock.

use mips_core::engine::{
    BmmFactory, Engine, EngineBuilder, ExclusionSet, FexiproFactory, FnFactory, IndexScope,
    LempFactory, MaximusFactory, QueryRequest, SolverFactory,
};
use mips_core::maximus::MaximusConfig;
use mips_core::optimus::OptimusConfig;
use mips_core::serve::ServerBuilder;
use mips_core::solver::MipsSolver;
use mips_data::synth::{synth_model, SynthConfig};
use mips_data::{MfModel, ModelView};
use mips_linalg::CacheConfig;
use mips_topk::TopKList;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model(users: usize, items: usize) -> Arc<MfModel> {
    Arc::new(synth_model(&SynthConfig {
        num_users: users,
        num_items: items,
        num_factors: 8,
        item_norm_skew: 0.7,
        user_spread: 0.4,
        ..SynthConfig::default()
    }))
}

fn tiny_optimus() -> OptimusConfig {
    OptimusConfig {
        sample_fraction: 0.05,
        cache: CacheConfig {
            l1_bytes: 1024,
            l2_bytes: 2048,
            l3_bytes: 4096,
        },
        ..OptimusConfig::default()
    }
}

/// Mixed-shape corpus: all selections, shard-straddling ranges/ids,
/// repeats, exclusions (including across shard boundaries), k edges.
fn corpus(num_users: usize, num_items: usize) -> Vec<QueryRequest> {
    let mut exclusions = ExclusionSet::new();
    for u in [0, num_users / 3, num_users / 3 + 1, num_users - 1] {
        for item in 0..6u32 {
            exclusions.insert(u, item * 2);
        }
    }
    let exclusions = Arc::new(exclusions);
    vec![
        QueryRequest::top_k(1),
        QueryRequest::top_k(5),
        QueryRequest::top_k(num_items),
        QueryRequest::top_k(7).users_range(0..num_users),
        QueryRequest::top_k(3).users_range(num_users / 3 - 1..num_users / 3 + 2),
        QueryRequest::top_k(2).users(vec![num_users - 1, 0, num_users / 2, 0]),
        QueryRequest::top_k(4).users((0..num_users).rev().collect::<Vec<_>>()),
        QueryRequest::top_k(5).exclude(Arc::clone(&exclusions)),
        QueryRequest::top_k(2)
            .users(vec![0, num_users / 3, num_users - 1])
            .exclude(exclusions),
    ]
}

/// One backend family under every scope: the served results must be
/// bit-identical to the sequential global engine.
///
/// Each scope gets a **fresh** engine on the same model (single-backend
/// planning is deterministic, so the sequential reference transfers),
/// keeping the per-shard cache tiers independent — servers sharing an
/// engine would share them (that sharing has its own test below).
fn assert_scopes_bit_identical(make_engine: impl Fn() -> Arc<Engine>, label: &str) {
    let reference = make_engine();
    let num_users = reference.model().num_users();
    let num_items = reference.model().num_items();
    let corpus = corpus(num_users, num_items);
    let expected: Vec<Vec<TopKList>> = corpus
        .iter()
        .map(|request| reference.execute(request).unwrap().results)
        .collect();

    for scope in [IndexScope::Global, IndexScope::PerShard, IndexScope::Auto] {
        let engine = make_engine();
        let server = ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(4)
            .workers(3)
            .max_batch(8)
            .index_scope(scope)
            .build()
            .unwrap();
        // Concurrent submitters to interleave shard queues.
        std::thread::scope(|outer| {
            for t in 0..3 {
                let server = &server;
                let corpus = &corpus;
                let expected = &expected;
                outer.spawn(move || {
                    for pass in 0..2 {
                        let mut handles = Vec::new();
                        for i in 0..corpus.len() {
                            let idx = (i * 5 + t + pass) % corpus.len();
                            handles.push((idx, server.submit(&corpus[idx]).unwrap()));
                        }
                        for (idx, handle) in handles {
                            let response = handle.wait().unwrap();
                            assert_eq!(
                                response.results, expected[idx],
                                "{label}: request {idx} diverged under {scope}"
                            );
                        }
                    }
                });
            }
        });
        let metrics = server.metrics();
        assert_eq!(metrics.index_scope, scope, "{label}");
        assert_eq!(metrics.failed, 0, "{label}");
        for shard in &metrics.shards {
            assert_eq!(shard.index_scope, scope, "{label}");
        }
        match scope {
            IndexScope::Global => {
                assert_eq!(
                    metrics.local_index_builds(),
                    0,
                    "{label}: global builds none"
                );
                assert_eq!(metrics.local_build_us(), 0, "{label}");
            }
            IndexScope::PerShard | IndexScope::Auto => {
                assert!(
                    metrics.local_index_builds() > 0,
                    "{label}: {scope} must build shard-local indexes"
                );
            }
        }
        server.shutdown().unwrap();
    }
}

#[test]
fn bmm_is_bit_identical_under_every_scope() {
    let m = model(97, 60);
    assert_scopes_bit_identical(
        || {
            Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&m))
                    .register(BmmFactory)
                    .build()
                    .unwrap(),
            )
        },
        "bmm",
    );
}

#[test]
fn maximus_is_bit_identical_under_every_scope() {
    // Shard-clustered MAXIMUS is the headline per-shard index: clusters
    // computed over each shard's users differ structurally from the global
    // clustering, yet results must not move a bit.
    let m = model(90, 70);
    assert_scopes_bit_identical(
        || {
            Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&m))
                    .register(MaximusFactory::new(MaximusConfig {
                        num_clusters: 3,
                        block_size: 16,
                        ..MaximusConfig::default()
                    }))
                    .build()
                    .unwrap(),
            )
        },
        "maximus",
    );
}

#[test]
fn lemp_is_bit_identical_under_every_scope() {
    let m = model(85, 64);
    assert_scopes_bit_identical(
        || {
            Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&m))
                    .register(LempFactory::default())
                    .build()
                    .unwrap(),
            )
        },
        "lemp",
    );
}

#[test]
fn fexipro_is_bit_identical_under_every_scope() {
    let m = model(60, 48);
    assert_scopes_bit_identical(
        || {
            Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&m))
                    .register(FexiproFactory::si())
                    .build()
                    .unwrap(),
            )
        },
        "fexipro-si",
    );
}

#[test]
fn multi_backend_scopes_agree_on_candidates_and_tie_breaks() {
    // With the full registry the planner's timing decides each scope's
    // backend per shard, so different shards may serve through different
    // (exact) solvers; the item lists — candidates and tie-breaks — must
    // still agree exactly with the sequential engine, and scores to 1e-9.
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(75, 50))
            .with_default_backends()
            .optimus(tiny_optimus())
            .build()
            .unwrap(),
    );
    let corpus = corpus(75, 50);
    let expected: Vec<Vec<TopKList>> = corpus
        .iter()
        .map(|request| engine.execute(request).unwrap().results)
        .collect();
    for scope in [IndexScope::PerShard, IndexScope::Auto] {
        let server = ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(3)
            .workers(2)
            .index_scope(scope)
            .build()
            .unwrap();
        for (idx, request) in corpus.iter().enumerate() {
            let response = server.execute(request).unwrap();
            assert_eq!(response.results.len(), expected[idx].len());
            for (got, want) in response.results.iter().zip(&expected[idx]) {
                assert!(
                    got.approx_eq(want, 1e-9),
                    "{scope}: request {idx} diverged beyond rounding:\n{got:?}\nvs\n{want:?}"
                );
            }
        }
        server.shutdown().unwrap();
    }
}

#[test]
fn shard_local_state_is_built_lazily_and_shared_per_bounds() {
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(80, 40))
            .register(BmmFactory)
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(2)
        .index_scope(IndexScope::PerShard)
        .build()
        .unwrap();
    // Nothing is built at assembly: construction is first-use-lazy.
    assert_eq!(server.metrics().local_index_builds(), 0);

    // One single-user request touches exactly one shard: one local build.
    server
        .execute(&QueryRequest::top_k(3).users(vec![0]))
        .unwrap();
    let metrics = server.metrics();
    assert_eq!(metrics.local_index_builds(), 1);
    assert_eq!(metrics.shards[0].local_index_builds, 1);
    assert_eq!(metrics.shards[1].local_index_builds, 0);

    // A full-range request builds the remaining three shards' solvers;
    // further traffic at the same k builds nothing (the per-shard tier
    // caches by bounds within the epoch).
    server.execute(&QueryRequest::top_k(3)).unwrap();
    assert_eq!(server.metrics().local_index_builds(), 4);
    for _ in 0..3 {
        server.execute(&QueryRequest::top_k(3)).unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(
        metrics.local_index_builds(),
        4,
        "steady state rebuilds nothing"
    );
    // A new k re-plans per shard but reuses the built solvers.
    server.execute(&QueryRequest::top_k(5)).unwrap();
    assert_eq!(server.metrics().local_index_builds(), 4);

    // A second server with identical bounds on the same engine shares the
    // epoch's per-shard tier outright.
    let sibling = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(2)
        .index_scope(IndexScope::PerShard)
        .build()
        .unwrap();
    sibling.execute(&QueryRequest::top_k(3)).unwrap();
    assert_eq!(
        sibling.metrics().local_index_builds(),
        0,
        "same bounds, same epoch: shard tier is shared"
    );
    sibling.shutdown().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn auto_scope_records_the_per_shard_decision() {
    // Auto pits the global plan's winner against the shard-local
    // candidates, shard by shard. Whichever way the timing falls, the
    // decision must be observable on the plans and serving must stay
    // exact; local candidates were built to be timed, so builds are
    // counted even when a shard stays global.
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(96, 40))
            .register(BmmFactory)
            .register(MaximusFactory::new(MaximusConfig {
                num_clusters: 2,
                block_size: 8,
                ..MaximusConfig::default()
            }))
            .optimus(tiny_optimus())
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(3)
        .workers(2)
        .index_scope(IndexScope::Auto)
        .build()
        .unwrap();
    let expected = engine.execute(&QueryRequest::top_k(4)).unwrap().results;
    let served = server.execute(&QueryRequest::top_k(4)).unwrap();
    for (got, want) in served.results.iter().zip(&expected) {
        assert_eq!(got.items, want.items);
    }
    let metrics = server.metrics();
    // Every shard built its local candidates (2 backends × 3 shards).
    assert_eq!(metrics.local_index_builds(), 6);
    assert!(metrics.local_build_us() > 0);
    server.shutdown().unwrap();
}

#[test]
fn concurrent_first_touch_builds_do_not_convoy() {
    // Regression test for the warm path: lazy builds run OUTSIDE the cache
    // cell's critical section and install compare-and-swap style. With a
    // deliberately slow-building backend, two shards' first requests — two
    // distinct cache cells — must overlap their builds instead of
    // serializing; the wall clock for both is well under two build times.
    const BUILD: Duration = Duration::from_millis(250);
    struct Slow(mips_core::BmmSolver);
    impl MipsSolver for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn build_seconds(&self) -> f64 {
            0.0
        }
        fn batches_users(&self) -> bool {
            true
        }
        fn num_users(&self) -> usize {
            self.0.num_users()
        }
        fn query_range(&self, k: usize, users: std::ops::Range<usize>) -> Vec<TopKList> {
            self.0.query_range(k, users)
        }
        fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
            self.0.query_subset(k, users)
        }
    }
    struct SlowFactory;
    impl SolverFactory for SlowFactory {
        fn key(&self) -> &str {
            "slow"
        }
        fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, mips_core::MipsError> {
            std::thread::sleep(BUILD);
            Ok(Box::new(Slow(mips_core::BmmSolver::build(Arc::clone(
                model,
            )))))
        }
        fn build_view(
            &self,
            view: &ModelView,
        ) -> Result<Box<dyn MipsSolver>, mips_core::MipsError> {
            std::thread::sleep(BUILD);
            Ok(Box::new(Slow(mips_core::BmmSolver::build_view(view))))
        }
    }

    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(40, 20))
            .register(SlowFactory)
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(2)
        .workers(2)
        .index_scope(IndexScope::PerShard)
        .batching(false)
        .build()
        .unwrap();
    // Two single-user requests, one per shard, submitted together: each
    // triggers its shard's first-touch build on its own worker.
    let started = Instant::now();
    let a = server
        .submit(&QueryRequest::top_k(2).users(vec![0]))
        .unwrap();
    let b = server
        .submit(&QueryRequest::top_k(2).users(vec![39]))
        .unwrap();
    a.wait().unwrap();
    b.wait().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < BUILD + BUILD / 2,
        "two first-touch builds must overlap, took {elapsed:?}"
    );
    assert_eq!(server.metrics().local_index_builds(), 2);
    server.shutdown().unwrap();
}

#[test]
fn old_epochs_reclaim_their_shard_local_caches() {
    let old_model = model(60, 30);
    let weak_old = Arc::downgrade(&old_model);
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&old_model))
            .register(BmmFactory)
            .build()
            .unwrap(),
    );
    drop(old_model);

    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(3)
        .workers(2)
        .index_scope(IndexScope::PerShard)
        .build()
        .unwrap();
    // Populate epoch 0's per-shard tier (3 shard solvers + plans).
    server.execute(&QueryRequest::top_k(4)).unwrap();
    assert_eq!(server.metrics().local_index_builds(), 3);
    assert!(weak_old.upgrade().is_some());

    // Swap (re-sharding: different user count) and drain one request on
    // the new epoch: the old epoch — model, shard solvers, shard plans —
    // must become unreachable by refcount alone.
    engine.swap_model(model(45, 30)).unwrap();
    server.execute(&QueryRequest::top_k(4)).unwrap();
    let mut reclaimed = false;
    for _ in 0..200 {
        if weak_old.upgrade().is_none() {
            reclaimed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        reclaimed,
        "epoch 0's shard-local caches kept the old model alive"
    );
    server.shutdown().unwrap();
}

#[test]
fn per_shard_single_backend_plans_without_sampling() {
    // PerShard with one backend mirrors the global single-candidate
    // shortcut: plan once per (shard, k), no sampling, and the planner-run
    // counter grows per shard, not per request.
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(64, 32))
            .register(BmmFactory)
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(1)
        .index_scope(IndexScope::PerShard)
        .build()
        .unwrap();
    for _ in 0..3 {
        server.execute(&QueryRequest::top_k(3)).unwrap();
    }
    assert_eq!(engine.planner_runs(), 4, "one shard plan per shard");
    server.shutdown().unwrap();
}

#[test]
fn fn_factories_serve_per_shard_through_the_default_view_build() {
    // A custom backend that never heard of views still works under
    // PerShard: the default `build_view` materializes the shard sub-model.
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model(50, 25))
            .register(FnFactory::new("custom", |m: &Arc<MfModel>| {
                Ok(Box::new(mips_core::BmmSolver::build(Arc::clone(m))) as Box<dyn MipsSolver>)
            }))
            .build()
            .unwrap(),
    );
    let expected = engine.execute(&QueryRequest::top_k(3)).unwrap().results;
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(3)
        .workers(2)
        .index_scope(IndexScope::PerShard)
        .build()
        .unwrap();
    let served = server.execute(&QueryRequest::top_k(3)).unwrap();
    assert_eq!(served.results, expected);
    server.shutdown().unwrap();
}
