//! Property: [`Precision::F32Rescore`] is an execution-strategy change,
//! never a results change. For every registered backend, forcing the f32
//! screen + exact f64 rescore path must reproduce the pure-f64 engine's
//! ids **and score bits** exactly — across named dispatch, planned
//! dispatch, `Auto` competition, per-shard serving, model swaps, and
//! adversarial corpora built to stress the screen envelope (near-ties
//! below f32 resolution, exact duplicates, magnitudes that push f32
//! products toward overflow and underflow, and near-cancelling dots where
//! the relative envelope is enormous compared to the score).

use mips_core::engine::{
    BackendRegistry, Engine, EngineBuilder, IndexScope, QueryRequest, QueryResponse,
};
use mips_core::precision::Precision;
use mips_core::serve::ServerBuilder;
use mips_data::MfModel;
use mips_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

fn random_model(n_users: usize, n_items: usize, f: usize, seed: u64) -> Arc<MfModel> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    };
    let users = Matrix::from_fn(n_users, f, |_, _| next());
    let items = Matrix::from_fn(n_items, f, |_, _| next());
    Arc::new(MfModel::new("prop", users, items).unwrap())
}

fn engine_at(model: &Arc<MfModel>, precision: Precision) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(model))
            .with_default_backends()
            .precision(precision)
            .build()
            .unwrap(),
    )
}

/// Collapses a response to `(items, score bits)` rows — `f64` equality
/// would accept `-0.0 == 0.0` and reject `NaN == NaN`; bit equality is the
/// contract the mixed-precision path promises.
fn bits(response: &QueryResponse) -> Vec<(Vec<u32>, Vec<u64>)> {
    response
        .results
        .iter()
        .map(|list| {
            (
                list.items.clone(),
                list.scores.iter().map(|s| s.to_bits()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Named dispatch: for every backend key, the forced-f32 engine's
    /// answer is bit-identical to the f64 engine's, at every k, while the
    /// screen-capable backends actually report the mixed-precision path.
    #[test]
    fn forced_f32_rescore_is_bit_identical_per_backend(
        n_users in 2usize..14,
        n_items in 2usize..50,
        f in 1usize..9,
        seed in 0u64..300,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let f64_engine = engine_at(&model, Precision::F64);
        let f32_engine = engine_at(&model, Precision::F32Rescore);
        for key in f64_engine.backend_keys() {
            for k in [1, (n_items / 2).max(1), n_items] {
                let request = QueryRequest::top_k(k);
                let want = f64_engine.execute_with(key, &request).unwrap();
                let got = f32_engine.execute_with(key, &request).unwrap();
                prop_assert_eq!(
                    bits(&got), bits(&want),
                    "{} diverged at k={}", key, k
                );
                prop_assert_eq!(want.precision, Precision::F64);
                let screened = matches!(key, "bmm" | "lemp" | "maximus");
                prop_assert_eq!(
                    got.precision,
                    if screened { Precision::F32Rescore } else { Precision::F64 },
                    "{} must report its numeric path", key
                );
            }
        }
    }

    /// Planned dispatch under `Auto`: whichever candidate OPTIMUS picks —
    /// f64-direct or a `+f32` screen variant — the served bits match the
    /// **same backend's** pure-f64 path. (Different backends legitimately
    /// accumulate dots in different orders and may disagree in the last
    /// ulp, so the contract is per-backend, not cross-backend: `Auto` must
    /// never let the numeric *mode* change the bits the chosen backend
    /// would have served.)
    #[test]
    fn auto_planning_is_bit_identical_whatever_wins(
        n_users in 2usize..12,
        n_items in 2usize..40,
        f in 1usize..7,
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let request = QueryRequest::top_k(k.min(n_items));
        let f64_engine = engine_at(&model, Precision::F64);
        let got = engine_at(&model, Precision::Auto).execute(&request).unwrap();
        // Map the winner's display name ("LEMP+f32" / "LEMP+i8" → "LEMP")
        // back to its registry key to pin the f64 reference to the same
        // backend.
        let base_name = got
            .backend
            .strip_suffix("+f32")
            .or_else(|| got.backend.strip_suffix("+i8"))
            .unwrap_or(&got.backend);
        let key = f64_engine
            .backend_keys()
            .into_iter()
            .find(|key| f64_engine.solver(key).is_ok_and(|s| s.name() == base_name))
            .expect("auto winner maps to a registered backend");
        let want = f64_engine.execute_with(key, &request).unwrap();
        prop_assert_eq!(
            bits(&got), bits(&want),
            "auto winner {} diverged from its own f64 path", &got.backend
        );
    }

    /// Per-shard serving: each shard screens against its own view's f32
    /// mirror; reassembled responses still match the global f64 engine
    /// bit for bit, for every backend registered alone.
    #[test]
    fn sharded_f32_rescore_matches_the_global_f64_engine(
        n_users in 4usize..20,
        n_items in 4usize..40,
        f in 1usize..6,
        shards in 1usize..4,
        seed in 0u64..200,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let k = (n_items / 2).max(1);
        for factory in BackendRegistry::with_defaults().factories() {
            let want = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&model))
                    .register_arc(Arc::clone(factory))
                    .build()
                    .unwrap(),
            )
            .execute(&QueryRequest::top_k(k))
            .unwrap();
            let f32_engine = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&model))
                    .register_arc(Arc::clone(factory))
                    .precision(Precision::F32Rescore)
                    .build()
                    .unwrap(),
            );
            let server = ServerBuilder::new()
                .engine(f32_engine)
                .shards(shards)
                .workers(1)
                .index_scope(IndexScope::PerShard)
                .build()
                .unwrap();
            let served = server.execute(&QueryRequest::top_k(k)).unwrap();
            prop_assert_eq!(
                bits(&served), bits(&want),
                "{} diverged across {} shards", factory.key(), shards
            );
            server.shutdown().unwrap();
        }
    }
}

/// Model swaps rebuild the screen mirrors for the new epoch: after each
/// swap, the forced-f32 engine must match a fresh f64 engine built
/// directly on that epoch's model — pinned to the **same backend** the
/// f32 engine's planner picked (two independently planned engines may
/// legitimately crown different winners, and different backends may
/// disagree in the last ulp; the swap contract is that rebuilding the
/// mirrors never changes the chosen backend's bits).
#[test]
fn f32_rescore_survives_model_swaps_bit_identically() {
    let generations = [
        random_model(30, 200, 8, 1),
        random_model(45, 150, 8, 2),
        random_model(20, 260, 8, 3),
    ];
    let engine = engine_at(&generations[0], Precision::F32Rescore);
    for (epoch, model) in generations.iter().enumerate() {
        if epoch > 0 {
            engine.swap_model(Arc::clone(model)).unwrap();
        }
        let want = engine_at(model, Precision::F64);
        for k in [1, 7, 40] {
            let request = QueryRequest::top_k(k);
            let got = engine.execute(&request).unwrap();
            let base_name = got.backend.strip_suffix("+f32").unwrap_or(&got.backend);
            let key = want
                .backend_keys()
                .into_iter()
                .find(|key| want.solver(key).is_ok_and(|s| s.name() == base_name))
                .expect("screen winner maps to a registered backend");
            assert_eq!(
                bits(&got),
                bits(&want.execute_with(key, &request).unwrap()),
                "epoch {epoch} diverged at k={k} on {}",
                &got.backend
            );
        }
    }
}

/// Builds a corpus designed to break an unsound screen, with `n` items per
/// regime. The user rows mirror the regimes so every (user, item) pairing
/// crosses magnitudes.
fn adversarial_model(n: usize, f: usize) -> Arc<MfModel> {
    let mut state = 0xDEAD_BEEF_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // A shared base direction, so regime 0/1 items are near-ties against
    // every user.
    let base: Vec<f64> = (0..f).map(|_| next()).collect();
    let items = Matrix::from_fn(5 * n, f, |r, c| {
        let (regime, jitter) = (r / n, next());
        match regime {
            // Near-ties: perturbations ~1e-13 below f32 resolution — every
            // pairwise score gap is invisible to the screen; only the
            // envelope keeps the true winners alive for the f64 rescore.
            0 => base[c] + jitter * 1e-13,
            // Exact duplicates of one vector: ties broken by item id, a
            // decision the screen must not perturb.
            1 => base[c],
            // Large magnitude: f32 products near 1e16 — rel envelope grows
            // with the norms, abs error per entry ~1e1.
            2 => jitter * 1e8,
            // Tiny magnitude: f32 products underflow to zero entirely; the
            // envelope's absolute term must cover the lost mass.
            3 => jitter * 1e-30,
            // Near-cancellation: huge alternating entries whose dot nearly
            // cancels — ‖u‖·‖i‖ is enormous relative to the score, so the
            // screen learns nothing and must rescore everything.
            _ => {
                if c % 2 == 0 {
                    1e6 + jitter
                } else {
                    -1e6 + jitter
                }
            }
        }
    });
    let users = Matrix::from_fn(8, f, |r, c| match r % 4 {
        0 => base[c] + next() * 1e-13,
        1 => next() * 1e8,
        2 => next() * 1e-30,
        _ => next(),
    });
    Arc::new(MfModel::new("adversarial", users, items).unwrap())
}

/// The adversarial corpus, end to end: every backend, forced f32, at ks
/// spanning "deep in the near-tie block" to "the whole corpus".
#[test]
fn adversarial_corpora_cannot_shake_bit_identity() {
    let model = adversarial_model(40, 8);
    let f64_engine = engine_at(&model, Precision::F64);
    let f32_engine = engine_at(&model, Precision::F32Rescore);
    for key in f64_engine.backend_keys() {
        for k in [1, 3, 35, 90, 200] {
            let request = QueryRequest::top_k(k);
            let want = f64_engine.execute_with(key, &request).unwrap();
            let got = f32_engine.execute_with(key, &request).unwrap();
            assert_eq!(
                bits(&got),
                bits(&want),
                "{key} diverged on the adversarial corpus at k={k}"
            );
        }
    }
}
