//! Property: a [`ModelView`] covering the **full** user range is
//! indistinguishable from the un-viewed model — for every registered
//! backend, building over the view produces byte-identical solver
//! behaviour (same names, same user counts, bit-identical results at every
//! k), and planning over the full-range view reaches the same decisions
//! and serves bit-identically.

use mips_core::engine::{BackendRegistry, EngineBuilder, IndexScope, QueryRequest};
use mips_core::serve::ServerBuilder;
use mips_data::{MfModel, ModelView};
use mips_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

fn random_model(n_users: usize, n_items: usize, f: usize, seed: u64) -> Arc<MfModel> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    };
    let users = Matrix::from_fn(n_users, f, |_, _| next());
    let items = Matrix::from_fn(n_items, f, |_, _| next());
    Arc::new(MfModel::new("prop", users, items).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Solver state: `build_view(full view)` ≡ `build(model)` for every
    /// registered backend, bit for bit.
    #[test]
    fn full_view_builds_are_byte_identical_to_model_builds(
        n_users in 2usize..14,
        n_items in 2usize..50,
        f in 1usize..9,
        k in 1usize..7,
        seed in 0u64..300,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let view = ModelView::full(&model);
        prop_assert!(view.is_full());
        for factory in BackendRegistry::with_defaults().factories() {
            let viewed = factory.build_view(&view).expect("view build");
            let direct = factory.build(&model).expect("model build");
            prop_assert_eq!(viewed.name(), direct.name());
            prop_assert_eq!(viewed.num_users(), direct.num_users());
            prop_assert_eq!(viewed.batches_users(), direct.batches_users());
            for k in [k.min(n_items), 1, n_items] {
                prop_assert_eq!(
                    viewed.query_all(k),
                    direct.query_all(k),
                    "{} diverged at k={}", factory.key(), k
                );
                let probe: Vec<usize> = vec![0, n_users - 1, 0];
                prop_assert_eq!(
                    viewed.query_subset(k, &probe),
                    direct.query_subset(k, &probe),
                    "{} subset diverged at k={}", factory.key(), k
                );
            }
        }
    }

    /// Plans: a one-shard `PerShard` server (whose single shard's view IS
    /// the full user range) picks the same backend and serves bit-identical
    /// results to the global engine, for every backend registered alone.
    #[test]
    fn full_range_shard_plans_match_global_plans(
        n_users in 4usize..20,
        n_items in 4usize..40,
        f in 1usize..6,
        seed in 0u64..200,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let k = (n_items / 2).max(1);
        for factory in BackendRegistry::with_defaults().factories() {
            let engine = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&model))
                    .register_arc(Arc::clone(factory))
                    .build()
                    .unwrap(),
            );
            let global_plan = engine.prepare(k).unwrap();
            let expected = engine.execute(&QueryRequest::top_k(k)).unwrap();
            let server = ServerBuilder::new()
                .engine(Arc::clone(&engine))
                .shards(1)
                .workers(1)
                .index_scope(IndexScope::PerShard)
                .build()
                .unwrap();
            let served = server.execute(&QueryRequest::top_k(k)).unwrap();
            prop_assert_eq!(served.results, expected.results, "{}", factory.key());
            prop_assert_eq!(served.backend, expected.backend);
            // Single backend: the shard plan's decision trivially matches.
            prop_assert_eq!(global_plan.backend_key(), factory.key());
            server.shutdown().unwrap();
        }
    }
}
