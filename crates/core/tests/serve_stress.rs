//! Stress and correctness suite for the sharded serving runtime.
//!
//! The load-bearing property: whatever the shard count, worker count,
//! batching policy, or submission concurrency, every response is
//! **bit-identical** to a sequential [`Engine::execute`] on the same
//! engine — sharding, coalescing, and reassembly must be invisible except
//! in the clock.

use mips_core::engine::{Engine, EngineBuilder, ExclusionSet, FnFactory, MipsError, QueryRequest};
use mips_core::optimus::OptimusConfig;
use mips_core::serve::ServerBuilder;
use mips_core::solver::MipsSolver;
use mips_data::synth::{synth_model, SynthConfig};
use mips_data::MfModel;
use mips_linalg::CacheConfig;
use mips_topk::TopKList;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

fn model(users: usize, items: usize) -> Arc<MfModel> {
    Arc::new(synth_model(&SynthConfig {
        num_users: users,
        num_items: items,
        num_factors: 8,
        ..SynthConfig::default()
    }))
}

fn tiny_optimus() -> OptimusConfig {
    OptimusConfig {
        sample_fraction: 0.05,
        cache: CacheConfig {
            l1_bytes: 1024,
            l2_bytes: 2048,
            l3_bytes: 4096,
        },
        ..OptimusConfig::default()
    }
}

fn engine(users: usize, items: usize) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(model(users, items))
            .with_default_backends()
            .optimus(tiny_optimus())
            .build()
            .unwrap(),
    )
}

/// A corpus of mixed requests: every selection shape, boundary-straddling
/// ranges and id-lists, repeated ids, exclusion sets that cross shards,
/// and k from 1 to the whole catalog.
fn mixed_corpus(engine: &Engine) -> Vec<QueryRequest> {
    let num_users = engine.model().num_users();
    let num_items = engine.model().num_items();
    // Exclusions for users on both sides of every shard boundary of a
    // 3-shard split, including a power user with a huge list.
    let mut exclusions = ExclusionSet::new();
    for u in [0, num_users / 3, num_users / 3 + 1, num_users - 1] {
        for item in 0..5u32 {
            exclusions.insert(u, item * 3);
        }
    }
    for item in 0..(num_items as u32 * 2 / 3) {
        exclusions.insert(1, item); // power user: excludes 2/3 of the catalog
    }
    let exclusions = Arc::new(exclusions);
    vec![
        QueryRequest::top_k(1),
        QueryRequest::top_k(5),
        QueryRequest::top_k(num_items), // k = whole catalog
        QueryRequest::top_k(7).users_range(0..num_users),
        QueryRequest::top_k(3).users_range(num_users / 3 - 1..num_users / 3 + 2),
        QueryRequest::top_k(4).users_range(num_users - 1..num_users),
        QueryRequest::top_k(2).users(vec![num_users - 1, 0, num_users / 2]),
        QueryRequest::top_k(6).users(vec![5, 5, num_users - 1, 5, 0, num_users / 3]),
        QueryRequest::top_k(3).users((0..num_users).rev().collect::<Vec<_>>()),
        QueryRequest::top_k(5).exclude(Arc::clone(&exclusions)),
        QueryRequest::top_k(2)
            .users(vec![1, 0, num_users / 3, num_users - 1])
            .exclude(Arc::clone(&exclusions)),
        QueryRequest::top_k(4)
            .users_range(0..num_users / 2 + 1)
            .exclude(exclusions),
    ]
}

#[test]
fn concurrent_mixed_requests_are_bit_identical_to_sequential() {
    let engine = engine(97, 120); // 97 users: ragged over any shard count
    let corpus = mixed_corpus(&engine);
    let expected: Vec<Vec<TopKList>> = corpus
        .iter()
        .map(|request| engine.execute(request).unwrap().results)
        .collect();

    for (shards, workers, batching) in [(3, 4, true), (4, 2, false), (97, 8, true)] {
        let server = ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(shards)
            .workers(workers)
            .batching(batching)
            .max_batch(8)
            .build()
            .unwrap();
        // 6 submitter threads × 4 passes, each walking the corpus from a
        // different offset so shard queues interleave differently.
        std::thread::scope(|scope| {
            for t in 0..6 {
                let server = &server;
                let corpus = &corpus;
                let expected = &expected;
                scope.spawn(move || {
                    for pass in 0..4 {
                        let mut handles = Vec::new();
                        for i in 0..corpus.len() {
                            let idx = (i * 7 + t + pass) % corpus.len();
                            handles.push((idx, server.submit(&corpus[idx]).unwrap()));
                        }
                        for (idx, handle) in handles {
                            let response = handle.wait().unwrap();
                            assert_eq!(
                                response.results, expected[idx],
                                "request {idx} diverged (shards={shards} workers={workers} batching={batching})"
                            );
                            assert!(response.planned);
                            assert!(!response.backend.is_empty());
                        }
                    }
                });
            }
        });
        let metrics = server.metrics();
        assert_eq!(metrics.submitted, 6 * 4 * corpus.len() as u64);
        assert_eq!(metrics.completed, metrics.submitted);
        assert_eq!(metrics.failed, 0);
        assert_eq!(metrics.latency.count, metrics.completed);
        let shard_submitted: u64 = metrics.shards.iter().map(|s| s.submitted).sum();
        let shard_completed: u64 = metrics.shards.iter().map(|s| s.completed).sum();
        assert_eq!(shard_submitted, shard_completed);
        assert!(shard_completed >= metrics.completed);
        server.shutdown().unwrap();
    }
}

#[test]
fn ragged_boundaries_cover_every_user_exactly_once() {
    let engine = engine(41, 30);
    for shards in [1, 2, 3, 5, 7, 40, 41, 64] {
        let server = ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(shards)
            .workers(2)
            .build()
            .unwrap();
        let bounds: Vec<Range<usize>> = server.shard_bounds().to_vec();
        assert!(bounds.len() <= shards.min(41));
        assert_eq!(bounds[0].start, 0);
        assert_eq!(bounds.last().unwrap().end, 41);
        for pair in bounds.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "contiguous, no gaps");
        }
        let response = server.execute(&QueryRequest::top_k(3)).unwrap();
        assert_eq!(response.results.len(), 41);
    }
}

#[test]
fn k_edges_match_sequential_and_invalid_k_is_a_typed_error() {
    let engine = engine(23, 16);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4) // users-per-shard (6) < catalog size; k spans both
        .workers(3)
        .build()
        .unwrap();
    for k in [1, 5, 6, 16] {
        // k ≥ users-per-shard and k = num_items included.
        let request = QueryRequest::top_k(k);
        assert_eq!(
            server.execute(&request).unwrap().results,
            engine.execute(&request).unwrap().results,
            "k={k}"
        );
    }
    assert_eq!(
        server.execute(&QueryRequest::top_k(0)).unwrap_err(),
        MipsError::InvalidK {
            k: 0,
            num_items: 16
        }
    );
    assert_eq!(
        server.execute(&QueryRequest::top_k(17)).unwrap_err(),
        MipsError::InvalidK {
            k: 17,
            num_items: 16
        }
    );
    assert!(server
        .execute(&QueryRequest::top_k(3).users(vec![23]))
        .is_err());
    assert!(server
        .execute(&QueryRequest::top_k(3).users(Vec::new()))
        .is_err());
}

#[test]
fn single_backend_server_matches_direct_solver() {
    // MAXIMUS takes a different sequential path for query_all (cluster
    // membership order) than for ranges; the server's range splits must
    // still reproduce it bit-for-bit.
    use mips_core::engine::MaximusFactory;
    use mips_core::maximus::MaximusConfig;
    let m = model(60, 48);
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(MaximusFactory::new(MaximusConfig {
                num_clusters: 3,
                block_size: 8,
                ..MaximusConfig::default()
            }))
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(2)
        .build()
        .unwrap();
    for request in [
        QueryRequest::top_k(5),
        QueryRequest::top_k(5).users_range(13..44),
        QueryRequest::top_k(5).users(vec![59, 0, 17, 17, 30]),
    ] {
        assert_eq!(
            server.execute(&request).unwrap().results,
            engine.execute(&request).unwrap().results
        );
    }
}

#[test]
fn micro_batching_coalesces_single_user_traffic_without_changing_results() {
    let engine = engine(64, 80);
    let expected = engine.execute(&QueryRequest::top_k(5)).unwrap().results;
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(2)
        .workers(1) // one worker: the backlog forms, batches must fill
        .max_batch(16)
        .batch_window(Duration::from_millis(2))
        .build()
        .unwrap();
    // Flood with single-user requests; a single worker guarantees a queue
    // backlog, so the adaptive batcher must coalesce.
    let handles: Vec<_> = (0..64)
        .map(|u| {
            (
                u,
                server
                    .submit(&QueryRequest::top_k(5).users(vec![u]))
                    .unwrap(),
            )
        })
        .collect();
    for (u, handle) in handles {
        assert_eq!(handle.wait().unwrap().results[0], expected[u], "user {u}");
    }
    let metrics = server.metrics();
    assert_eq!(metrics.completed, 64);
    assert!(
        metrics.batches() < 64,
        "single-user flood must coalesce: {} batches for 64 requests",
        metrics.batches()
    );
    assert!(metrics.coalesced() > 0);
    assert!(metrics.mean_batch_size() > 1.0);
}

#[test]
fn try_submit_applies_backpressure_and_blocking_submit_recovers() {
    /// A solver that serves slowly enough to hold the queue full.
    struct SlowSolver {
        inner: mips_core::BmmSolver,
    }
    impl MipsSolver for SlowSolver {
        fn name(&self) -> &str {
            "slow"
        }
        fn build_seconds(&self) -> f64 {
            0.0
        }
        fn batches_users(&self) -> bool {
            true
        }
        fn num_users(&self) -> usize {
            self.inner.num_users()
        }
        fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
            std::thread::sleep(Duration::from_millis(30));
            self.inner.query_range(k, users)
        }
        fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
            std::thread::sleep(Duration::from_millis(30));
            self.inner.query_subset(k, users)
        }
    }
    let m = model(16, 20);
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(FnFactory::new("slow", |model: &Arc<MfModel>| {
                Ok(Box::new(SlowSolver {
                    inner: mips_core::BmmSolver::build(Arc::clone(model)),
                }) as Box<dyn MipsSolver>)
            }))
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(engine)
        .shards(1)
        .workers(1)
        .queue_capacity(2)
        .batching(false)
        .build()
        .unwrap();
    // Fill the pipeline: one request executing, two queued.
    let running: Vec<_> = (0..3)
        .map(|_| {
            server
                .submit(&QueryRequest::top_k(2).users(vec![0]))
                .unwrap()
        })
        .collect();
    // The queue (capacity 2) is now full more often than not; hammer
    // try_submit until backpressure shows.
    let mut bounced = false;
    for _ in 0..50 {
        match server.try_submit(&QueryRequest::top_k(2).users(vec![1])) {
            Err(MipsError::ServerOverloaded { capacity: 2 }) => {
                bounced = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
            Ok(handle) => {
                handle.wait().unwrap();
            }
        }
    }
    assert!(bounced, "try_submit never hit backpressure");
    assert!(server.metrics().rejected >= 1);
    // Blocking submit waits out the backlog instead of bouncing.
    let late = server
        .submit(&QueryRequest::top_k(2).users(vec![2]))
        .unwrap();
    assert_eq!(late.wait().unwrap().results.len(), 1);
    for handle in running {
        handle.wait().unwrap();
    }
}

#[test]
fn worker_panic_fails_the_request_but_not_the_server() {
    /// Panics when asked for user 13, serves everyone else.
    struct TrapSolver {
        inner: mips_core::BmmSolver,
    }
    impl TrapSolver {
        fn check(&self, users: &[usize]) {
            if users.contains(&13) {
                panic!("user 13 is cursed");
            }
        }
    }
    impl MipsSolver for TrapSolver {
        fn name(&self) -> &str {
            "trap"
        }
        fn build_seconds(&self) -> f64 {
            0.0
        }
        fn batches_users(&self) -> bool {
            true
        }
        fn num_users(&self) -> usize {
            self.inner.num_users()
        }
        fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
            self.check(&users.clone().collect::<Vec<_>>());
            self.inner.query_range(k, users)
        }
        fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
            self.check(users);
            self.inner.query_subset(k, users)
        }
    }
    let m = model(20, 15);
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&m))
            .register(FnFactory::new("trap", |model: &Arc<MfModel>| {
                Ok(Box::new(TrapSolver {
                    inner: mips_core::BmmSolver::build(Arc::clone(model)),
                }) as Box<dyn MipsSolver>)
            }))
            .build()
            .unwrap(),
    );
    let server = ServerBuilder::new()
        .engine(engine)
        .shards(2)
        .workers(2)
        .build()
        .unwrap();
    let err = server
        .execute(&QueryRequest::top_k(2).users(vec![13]))
        .unwrap_err();
    assert!(
        matches!(&err, MipsError::WorkerPanicked { message } if message.contains("cursed")),
        "{err:?}"
    );
    // The pool survives and keeps serving; the failure is counted.
    let ok = server
        .execute(&QueryRequest::top_k(2).users(vec![1]))
        .unwrap();
    assert_eq!(ok.results.len(), 1);
    let metrics = server.metrics();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.completed, 2);
    // The panicked batch still settles its shard counters: no phantom
    // in-flight work is left behind.
    let submitted: u64 = metrics.shards.iter().map(|s| s.submitted).sum();
    let completed: u64 = metrics.shards.iter().map(|s| s.completed).sum();
    assert_eq!(submitted, completed);
    server.shutdown().unwrap();
}

#[test]
fn shutdown_rejects_new_work_and_drop_joins_workers() {
    let engine = engine(12, 10);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(2)
        .workers(2)
        .build()
        .unwrap();
    let handle = server.submit(&QueryRequest::top_k(2)).unwrap();
    assert_eq!(handle.wait().unwrap().results.len(), 12);
    server.shutdown().unwrap();
    // A dropped server also joins cleanly (no hang, no panic).
    let server = ServerBuilder::new()
        .engine(engine)
        .shards(1)
        .workers(1)
        .build()
        .unwrap();
    let _ = server.execute(&QueryRequest::top_k(1)).unwrap();
    drop(server);
}

#[test]
fn builder_rejects_bad_assemblies() {
    let engine = engine(8, 8);
    assert!(matches!(
        ServerBuilder::new().build(),
        Err(MipsError::InvalidConfig(_))
    ));
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .queue_capacity(0)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .max_batch(0)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    // A queue smaller than the shard count could never admit an all-shard
    // request except into an empty queue (starvable): rejected at build.
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(8)
            .queue_capacity(4)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    // An explicit zero shard/worker count is a configuration error, not a
    // silent fall-through to automatic sizing.
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(0)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .workers(0)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    // A deadline window with batching disabled would be silently ignored:
    // rejected instead.
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .batching(false)
            .batch_window(Duration::from_micros(100))
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    // The order of the two calls must not matter.
    assert!(matches!(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .batch_window(Duration::from_micros(100))
            .batching(false)
            .build(),
        Err(MipsError::InvalidConfig(_))
    ));
    // Auto knobs resolve to sane values.
    let server = ServerBuilder::new().engine(engine).build().unwrap();
    assert!(server.worker_count() >= 1);
    assert!(!server.shard_bounds().is_empty());
    assert!(server.options().shards >= 1);
}

#[test]
fn plans_are_shared_across_shards_not_resampled() {
    let engine = engine(90, 40);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(6)
        .workers(3)
        .build()
        .unwrap();
    server.execute(&QueryRequest::top_k(4)).unwrap();
    // The first request fans out to 6 shards over 3 workers; first-touch
    // planning installs compare-and-swap style, so up to one planner run
    // per concurrently racing worker — never one per shard, and no convoy.
    let first_wave = engine.planner_runs();
    assert!(
        (1..=3).contains(&first_wave),
        "{first_wave} planner runs for the first request"
    );
    for _ in 0..3 {
        server.execute(&QueryRequest::top_k(4)).unwrap();
    }
    // Steady state: the installed plan is shared by all shards; nothing
    // re-samples.
    assert_eq!(engine.planner_runs(), first_wave);
}
