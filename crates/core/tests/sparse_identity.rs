//! Bit-identity properties for the sparse inverted-index backend.
//!
//! The contract under test is the acceptance bar of the sparse subsystem:
//! on *every* catalog — from fully dense to 99%-sparse, hybrid heads
//! included — the inverted index returns results bit-identical to the
//! densified brute-force reference (same item order, same score bits), at
//! every `k` edge (1, middle, `n`, clamped past `n`) and under every knob
//! combination (norm pruning on/off, postings-vs-panel split forced both
//! ways). The same bar applies to the ad-hoc [`MipsSolver::query_vector`]
//! point-lookup path the query-API redesign added.

use mips_core::solver::MipsSolver;
use mips_core::{BmmSolver, SparseSolver};
use mips_data::sparse::{synth_sparse_model, SparseSynthConfig, SparseVec};
use mips_data::MfModel;
use mips_linalg::kernels::dot_gemm_ordered;
use mips_linalg::Matrix;
use mips_sparse::SparseConfig;
use mips_topk::{TopKHeap, TopKList};
use proptest::prelude::*;
use std::sync::Arc;

/// Collapses lists to comparable (ids, score bits) rows — scores must match
/// to the bit, not within a tolerance.
fn bits(lists: &[TopKList]) -> Vec<(Vec<u32>, Vec<u64>)> {
    lists
        .iter()
        .map(|l| {
            (
                l.items.clone(),
                l.scores.iter().map(|s| s.to_bits()).collect(),
            )
        })
        .collect()
}

/// The canonical reference for an ad-hoc query: every item's
/// `dot_gemm_ordered` score pushed through one `TopKHeap` (ties to the
/// smaller id) — the exact contract `query_vector` implementations owe.
fn reference_vector_topk(model: &MfModel, query: &[f64], k: usize) -> TopKList {
    let items = model.items();
    let mut heap = TopKHeap::new(k);
    for i in 0..items.rows() {
        heap.push(dot_gemm_ordered(query, items.row(i)), i as u32);
    }
    heap.into_sorted()
}

/// The knob grid every property sweeps: pruning off and on (twice), and
/// the hybrid split forced to panels-everywhere, the default mix, and
/// postings-everywhere.
fn config_grid() -> Vec<SparseConfig> {
    let mut grid = Vec::new();
    for prune_threshold in [0.0, 0.15, 0.45] {
        for dense_column_cutoff in [0.05, 0.25, 1.0] {
            let config = SparseConfig {
                prune_threshold,
                dense_column_cutoff,
            };
            config.validate().expect("grid configs are valid");
            grid.push(config);
        }
    }
    grid
}

/// The `k` edges for an `n`-item catalog: smallest, middle, exact, and
/// past-the-end (solvers clamp to `n`).
fn k_edges(n: usize) -> Vec<usize> {
    let mut edges = vec![1, (n / 2).max(1), n, n + 3];
    edges.dedup();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sparse catalogs across the density spectrum: the inverted index and
    /// the blocked-GEMM reference agree to the bit for every user, every
    /// `k` edge, and every knob combination.
    #[test]
    fn sparse_solver_matches_bmm_on_sparse_catalogs(users in 1usize..14,
                                                    items in 1usize..40,
                                                    f in 1usize..24,
                                                    density in 0.01f64..=1.0,
                                                    dense_head in 0usize..4,
                                                    seed in 0u64..2_000) {
        let model = Arc::new(synth_sparse_model(&SparseSynthConfig {
            num_users: users,
            num_items: items,
            num_factors: f,
            density,
            dense_head: dense_head.min(f),
            seed,
        }));
        let bmm = BmmSolver::build(Arc::clone(&model));
        for config in config_grid() {
            let sparse = SparseSolver::build(Arc::clone(&model), &config);
            for k in k_edges(items) {
                prop_assert_eq!(
                    bits(&sparse.query_all(k)),
                    bits(&bmm.query_all(k)),
                    "divergence at k={} under {:?}", k, config
                );
            }
        }
    }

    /// Tie-heavy catalogs (values drawn from {-1, 0, 1}) force the
    /// smaller-id tie-break through both the postings path and the rescore
    /// envelope; agreement must still be exact.
    #[test]
    fn sparse_solver_matches_bmm_under_ties(users in 1usize..8,
                                            items in 2usize..30,
                                            f in 1usize..6,
                                            seed in 0u64..1_000) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 60) % 3) as f64 - 1.0
        };
        // Guarantee at least one nonzero per item row (rescue the corner).
        let mut item_matrix = Matrix::from_fn(items, f, |_, _| next());
        for r in 0..items {
            if item_matrix.row(r).iter().all(|v| *v == 0.0) {
                item_matrix.row_mut(r)[r % f] = 1.0;
            }
        }
        let users_matrix = Matrix::from_fn(users, f, |_, _| next());
        let model = Arc::new(MfModel::new("ties", users_matrix, item_matrix).unwrap());
        let bmm = BmmSolver::build(Arc::clone(&model));
        for config in config_grid() {
            let sparse = SparseSolver::build(Arc::clone(&model), &config);
            for k in k_edges(items) {
                prop_assert_eq!(
                    bits(&sparse.query_all(k)),
                    bits(&bmm.query_all(k)),
                    "tie divergence at k={} under {:?}", k, config
                );
            }
        }
    }

    /// Ad-hoc `query_vector` lookups — both sparse payloads densified at
    /// the API boundary and fresh dense embeddings — match the canonical
    /// one-heap scan to the bit.
    #[test]
    fn query_vector_matches_the_canonical_scan(items in 1usize..40,
                                               f in 1usize..24,
                                               density in 0.01f64..=1.0,
                                               query_density in 0.05f64..=1.0,
                                               seed in 0u64..2_000) {
        let model = Arc::new(synth_sparse_model(&SparseSynthConfig {
            num_users: 2,
            num_items: items,
            num_factors: f,
            density,
            dense_head: 0,
            seed,
        }));
        // A deterministic ad-hoc query with exact-zero holes, exercising
        // the sparse wire shape via the same canonical form clients use.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let query: Vec<f64> = (0..f)
            .map(|_| {
                if next() < query_density {
                    let v = next() * 4.0 - 2.0;
                    if v == 0.0 { 0.5 } else { v }
                } else {
                    0.0
                }
            })
            .collect();
        let densified = SparseVec::from_dense(&query).densify();
        prop_assert_eq!(
            densified.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            query.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for config in config_grid() {
            let sparse = SparseSolver::build(Arc::clone(&model), &config);
            for k in k_edges(items) {
                let reference = reference_vector_topk(&model, &query, k);
                let got = MipsSolver::query_vector(&sparse, &query, k)
                    .expect("sparse backend supports point lookups");
                prop_assert_eq!(
                    bits(&[got]),
                    bits(&[reference]),
                    "query_vector divergence at k={} under {:?}", k, config
                );
            }
        }
    }
}

/// The trait-level default: backends without a point-lookup path report
/// `None` and the engine falls back to its canonical scan — BMM is one.
#[test]
fn backends_without_point_lookup_return_none() {
    let model = Arc::new(synth_sparse_model(&SparseSynthConfig {
        num_users: 3,
        num_items: 10,
        num_factors: 8,
        density: 0.5,
        dense_head: 0,
        seed: 7,
    }));
    let bmm = BmmSolver::build(Arc::clone(&model));
    assert!(MipsSolver::query_vector(&bmm, &[1.0; 8], 3).is_none());
}

/// An all-zero ad-hoc query has no postings to walk; the sparse path must
/// still produce the reference answer (all scores exactly `+0.0`, ids
/// ascending), not an empty list.
#[test]
fn zero_query_vector_is_exact() {
    let model = Arc::new(synth_sparse_model(&SparseSynthConfig {
        num_users: 2,
        num_items: 12,
        num_factors: 6,
        density: 0.3,
        dense_head: 0,
        seed: 11,
    }));
    let query = vec![0.0; 6];
    for config in config_grid() {
        let sparse = SparseSolver::build(Arc::clone(&model), &config);
        for k in [1, 5, 12, 15] {
            let got = MipsSolver::query_vector(&sparse, &query, k).unwrap();
            let reference = reference_vector_topk(&model, &query, k);
            assert_eq!(bits(&[got]), bits(&[reference]), "k={k} under {config:?}");
        }
    }
}
