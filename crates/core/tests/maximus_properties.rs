//! Property tests specific to the MAXIMUS index.

use mips_core::bmm::BmmSolver;
use mips_core::maximus::{ClusteringAlgo, MaximusConfig, MaximusIndex};
use mips_core::solver::MipsSolver;
use mips_data::MfModel;
use mips_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

fn random_model(n_users: usize, n_items: usize, f: usize, seed: u64) -> Arc<MfModel> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    };
    let users = Matrix::from_fn(n_users, f, |_, _| next());
    let items = Matrix::from_fn(n_items, f, |_, _| next());
    Arc::new(MfModel::new("prop", users, items).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Item blocking must never change results — only work distribution.
    #[test]
    fn blocking_factor_is_result_invariant(n_users in 2usize..15,
                                           n_items in 2usize..60,
                                           f in 1usize..8,
                                           block in 1usize..70,
                                           k in 1usize..6,
                                           seed in 0u64..300) {
        let model = random_model(n_users, n_items, f, seed);
        let reference = MaximusIndex::build(Arc::clone(&model), &MaximusConfig {
            num_clusters: 3,
            block_size: 1,
            item_blocking: false,
            ..MaximusConfig::default()
        }).query_all(k);
        let blocked = MaximusIndex::build(Arc::clone(&model), &MaximusConfig {
            num_clusters: 3,
            block_size: block,
            item_blocking: true,
            ..MaximusConfig::default()
        }).query_all(k);
        // Item sets must match exactly; scores may differ by accumulation
        // order (GEMM for the blocked prefix vs a dot product in the walk).
        for (r, b) in reference.iter().zip(&blocked) {
            prop_assert!(r.approx_eq(b, 1e-9), "{:?} vs {:?}", r, b);
        }
    }

    /// The per-cluster bound lists must be sorted descending — the property
    /// early termination relies on.
    #[test]
    fn cluster_lists_descend(n_users in 2usize..12,
                             n_items in 2usize..50,
                             f in 1usize..6,
                             clusters in 1usize..6,
                             seed in 0u64..300) {
        let model = random_model(n_users, n_items, f, seed);
        let index = MaximusIndex::build(Arc::clone(&model), &MaximusConfig {
            num_clusters: clusters,
            ..MaximusConfig::default()
        });
        // Indirect check: a walk that starts pruning can never re-admit —
        // equivalently, results equal brute force (exactness) AND the
        // reported θ_b values are within [0, π].
        for theta in index.cluster_thetas() {
            prop_assert!((0.0..=std::f64::consts::PI + 1e-6).contains(&theta));
        }
        let want = BmmSolver::build(Arc::clone(&model)).query_all(3);
        prop_assert_eq!(index.query_all(3), want);
    }

    /// §III-E: serving an arbitrary *new* vector through the dynamic-user
    /// path is exact.
    #[test]
    fn new_vector_queries_are_exact(n_items in 2usize..50,
                                    f in 1usize..6,
                                    k in 1usize..6,
                                    seed in 0u64..300) {
        let model = random_model(6, n_items, f, seed);
        let index = MaximusIndex::build(Arc::clone(&model), &MaximusConfig {
            num_clusters: 2,
            block_size: 4,
            ..MaximusConfig::default()
        });
        let mut state = seed | 7;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
        };
        let novel: Vec<f64> = (0..f).map(|_| next()).collect();
        let got = index.query_new_vector(&novel, k);
        // Brute-force reference on the novel vector.
        let probe = Arc::new(MfModel::new(
            "probe",
            Matrix::from_vec(1, f, novel).unwrap(),
            model.items().clone(),
        ).unwrap());
        let want = BmmSolver::build(probe).query_all(k);
        prop_assert_eq!(got.items, want[0].items.clone());
    }

    /// Both clustering algorithms yield exact indexes.
    #[test]
    fn clustering_algo_is_result_invariant(n_users in 2usize..12,
                                           n_items in 2usize..40,
                                           f in 1usize..6,
                                           seed in 0u64..200) {
        let model = random_model(n_users, n_items, f, seed);
        let want = BmmSolver::build(Arc::clone(&model)).query_all(4);
        for algo in [ClusteringAlgo::KMeans, ClusteringAlgo::Spherical] {
            let index = MaximusIndex::build(Arc::clone(&model), &MaximusConfig {
                num_clusters: 3,
                clustering: algo,
                ..MaximusConfig::default()
            });
            prop_assert_eq!(index.query_all(4), want.clone(), "algo {:?}", algo);
        }
    }
}
