//! Property: [`Precision::I8Rescore`] is an execution-strategy change,
//! never a results change. For every registered backend, forcing the int8
//! screen + exact f64 rescore path must reproduce the pure-f64 engine's
//! ids **and score bits** exactly — across named dispatch, planned
//! dispatch, `Auto` competition, per-shard serving, model swaps, and
//! adversarial corpora built to stress the quantization envelope
//! (near-ties far below int8 resolution, exact duplicates, magnitudes that
//! push the per-row scales to their extremes, and near-cancelling dots
//! where the L1-driven envelope dwarfs the score).
//!
//! The int8 screen is *kernel-invariant* — integer dots are exact in i32,
//! so the screen scores and candidate sets are identical across AVX2,
//! NEON, and scalar (pinned at the `mips-topk` layer); running this suite
//! under `MIPS_KERNEL=scalar` in CI therefore checks the same contract
//! over the portable kernels.

use mips_core::engine::{
    BackendRegistry, Engine, EngineBuilder, IndexScope, QueryRequest, QueryResponse,
};
use mips_core::precision::Precision;
use mips_core::serve::ServerBuilder;
use mips_data::MfModel;
use mips_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

fn random_model(n_users: usize, n_items: usize, f: usize, seed: u64) -> Arc<MfModel> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    };
    let users = Matrix::from_fn(n_users, f, |_, _| next());
    let items = Matrix::from_fn(n_items, f, |_, _| next());
    Arc::new(MfModel::new("prop", users, items).unwrap())
}

fn engine_at(model: &Arc<MfModel>, precision: Precision) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(model))
            .with_default_backends()
            .precision(precision)
            .build()
            .unwrap(),
    )
}

/// Collapses a response to `(items, score bits)` rows — `f64` equality
/// would accept `-0.0 == 0.0` and reject `NaN == NaN`; bit equality is the
/// contract the mixed-precision path promises.
fn bits(response: &QueryResponse) -> Vec<(Vec<u32>, Vec<u64>)> {
    response
        .results
        .iter()
        .map(|list| {
            (
                list.items.clone(),
                list.scores.iter().map(|s| s.to_bits()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Named dispatch: for every backend key, the forced-i8 engine's
    /// answer is bit-identical to the f64 engine's, at every k, while the
    /// screen-capable backends actually report the int8 path.
    #[test]
    fn forced_i8_rescore_is_bit_identical_per_backend(
        n_users in 2usize..14,
        n_items in 2usize..50,
        f in 1usize..9,
        seed in 0u64..300,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let f64_engine = engine_at(&model, Precision::F64);
        let i8_engine = engine_at(&model, Precision::I8Rescore);
        for key in f64_engine.backend_keys() {
            for k in [1, (n_items / 2).max(1), n_items] {
                let request = QueryRequest::top_k(k);
                let want = f64_engine.execute_with(key, &request).unwrap();
                let got = i8_engine.execute_with(key, &request).unwrap();
                prop_assert_eq!(
                    bits(&got), bits(&want),
                    "{} diverged at k={}", key, k
                );
                prop_assert_eq!(want.precision, Precision::F64);
                let screened = matches!(key, "bmm" | "lemp" | "maximus");
                prop_assert_eq!(
                    got.precision,
                    if screened { Precision::I8Rescore } else { Precision::F64 },
                    "{} must report its numeric path", key
                );
            }
        }
    }

    /// Per-shard serving: each shard quantizes against its own view's int8
    /// mirror; reassembled responses still match the global f64 engine
    /// bit for bit, for every backend registered alone.
    #[test]
    fn sharded_i8_rescore_matches_the_global_f64_engine(
        n_users in 4usize..20,
        n_items in 4usize..40,
        f in 1usize..6,
        shards in 1usize..4,
        seed in 0u64..200,
    ) {
        let model = random_model(n_users, n_items, f, seed);
        let k = (n_items / 2).max(1);
        for factory in BackendRegistry::with_defaults().factories() {
            let want = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&model))
                    .register_arc(Arc::clone(factory))
                    .build()
                    .unwrap(),
            )
            .execute(&QueryRequest::top_k(k))
            .unwrap();
            let i8_engine = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&model))
                    .register_arc(Arc::clone(factory))
                    .precision(Precision::I8Rescore)
                    .build()
                    .unwrap(),
            );
            let server = ServerBuilder::new()
                .engine(i8_engine)
                .shards(shards)
                .workers(1)
                .index_scope(IndexScope::PerShard)
                .build()
                .unwrap();
            let served = server.execute(&QueryRequest::top_k(k)).unwrap();
            prop_assert_eq!(
                bits(&served), bits(&want),
                "{} diverged across {} shards", factory.key(), shards
            );
            server.shutdown().unwrap();
        }
    }
}

/// Named dispatch under forced i8 serves the screen variants by name; the
/// screenless backends still answer, f64-direct.
#[test]
fn named_dispatch_under_forced_i8_uses_the_screen_variant() {
    let model = random_model(30, 90, 8, 42);
    let engine = engine_at(&model, Precision::I8Rescore);
    let request = QueryRequest::top_k(3);
    for (key, name) in [
        ("bmm", "Blocked MM+i8"),
        ("lemp", "LEMP+i8"),
        ("maximus", "Maximus+i8"),
    ] {
        let response = engine.execute_with(key, &request).unwrap();
        assert_eq!(response.backend, name);
        assert_eq!(response.precision, Precision::I8Rescore, "{key}");
    }
    let fex = engine.execute_with("fexipro-si", &request).unwrap();
    assert_eq!(fex.precision, Precision::F64);
}

/// Model swaps rebuild the int8 mirrors for the new epoch: after each
/// swap, the forced-i8 engine must match a fresh f64 engine built directly
/// on that epoch's model — pinned to the **same backend** the i8 engine's
/// planner picked.
#[test]
fn i8_rescore_survives_model_swaps_bit_identically() {
    let generations = [
        random_model(30, 200, 8, 1),
        random_model(45, 150, 8, 2),
        random_model(20, 260, 8, 3),
    ];
    let engine = engine_at(&generations[0], Precision::I8Rescore);
    for (epoch, model) in generations.iter().enumerate() {
        if epoch > 0 {
            engine.swap_model(Arc::clone(model)).unwrap();
        }
        let want = engine_at(model, Precision::F64);
        for k in [1, 7, 40] {
            let request = QueryRequest::top_k(k);
            let got = engine.execute(&request).unwrap();
            let base_name = got.backend.strip_suffix("+i8").unwrap_or(&got.backend);
            let key = want
                .backend_keys()
                .into_iter()
                .find(|key| want.solver(key).is_ok_and(|s| s.name() == base_name))
                .expect("screen winner maps to a registered backend");
            assert_eq!(
                bits(&got),
                bits(&want.execute_with(key, &request).unwrap()),
                "epoch {epoch} diverged at k={k} on {}",
                &got.backend
            );
        }
    }
}

/// Builds a corpus designed to break an unsound int8 screen, with `n`
/// items per regime. The user rows mirror the regimes so every
/// (user, item) pairing crosses magnitudes.
fn adversarial_model(n: usize, f: usize) -> Arc<MfModel> {
    let mut state = 0xDEAD_BEEF_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // A shared base direction, so regime 0/1 items are near-ties against
    // every user.
    let base: Vec<f64> = (0..f).map(|_| next()).collect();
    let items = Matrix::from_fn(5 * n, f, |r, c| {
        let (regime, jitter) = (r / n, next());
        match regime {
            // Near-ties: perturbations ~1e-13, orders of magnitude below
            // the ~1/254 int8 quantization step — every pairwise gap is
            // invisible to the codes; only the envelope keeps the true
            // winners alive for the f64 rescore.
            0 => base[c] + jitter * 1e-13,
            // Exact duplicates of one vector: ties broken by item id, a
            // decision the screen must not perturb.
            1 => base[c],
            // Large magnitude: the per-row scale shrinks to ~127/1e8, so
            // each reconstructed product carries an absolute error ~1e6 —
            // the envelope must absorb all of it.
            2 => jitter * 1e8,
            // Tiny magnitude: the per-row scale grows to ~127/1e-30 — the
            // scale inversions and the envelope's 1/s terms must stay
            // finite and conservative.
            3 => jitter * 1e-30,
            // Near-cancellation: huge alternating entries whose dot nearly
            // cancels — ‖i‖₁ is enormous relative to the score, so the
            // screen learns nothing and must rescore everything.
            _ => {
                if c % 2 == 0 {
                    1e6 + jitter
                } else {
                    -1e6 + jitter
                }
            }
        }
    });
    let users = Matrix::from_fn(8, f, |r, c| match r % 4 {
        0 => base[c] + next() * 1e-13,
        1 => next() * 1e8,
        2 => next() * 1e-30,
        _ => next(),
    });
    Arc::new(MfModel::new("adversarial", users, items).unwrap())
}

/// The adversarial corpus, end to end: every backend, forced i8, at ks
/// spanning "deep in the near-tie block" to "the whole corpus".
#[test]
fn adversarial_corpora_cannot_shake_bit_identity() {
    let model = adversarial_model(40, 8);
    let f64_engine = engine_at(&model, Precision::F64);
    let i8_engine = engine_at(&model, Precision::I8Rescore);
    for key in f64_engine.backend_keys() {
        for k in [1, 3, 35, 90, 200] {
            let request = QueryRequest::top_k(k);
            let want = f64_engine.execute_with(key, &request).unwrap();
            let got = i8_engine.execute_with(key, &request).unwrap();
            assert_eq!(
                bits(&got),
                bits(&want),
                "{key} diverged on the adversarial corpus at k={k}"
            );
        }
    }
}

/// Serving under forced i8 surfaces the screen's work in the shard
/// counters: batches tally as `i8_batches`, candidate/survivor counts
/// accumulate in the int8 lanes, and the f32 lanes stay untouched (and
/// vice versa under forced f32). This is the per-precision-mode screen
/// observability `/metrics` exposes.
#[test]
fn serve_metrics_report_screen_candidates_and_survivors_per_mode() {
    let model = random_model(40, 300, 8, 7);
    let registry = BackendRegistry::with_defaults();
    let bmm = registry
        .factories()
        .iter()
        .find(|f| f.key() == "bmm")
        .expect("bmm is a default backend");
    for (precision, expect_i8) in [(Precision::I8Rescore, true), (Precision::F32Rescore, false)] {
        let engine = Arc::new(
            EngineBuilder::new()
                .model(Arc::clone(&model))
                .register_arc(Arc::clone(bmm))
                .precision(precision)
                .build()
                .unwrap(),
        );
        let server = ServerBuilder::new()
            .engine(engine)
            .shards(2)
            .workers(1)
            .index_scope(IndexScope::PerShard)
            .build()
            .unwrap();
        for k in [1, 5, 20] {
            server.execute(&QueryRequest::top_k(k)).unwrap();
        }
        let metrics = server.metrics();
        server.shutdown().unwrap();
        assert!(metrics.completed > 0);
        let ((active_batches, idle_batches), (active, idle)) = if expect_i8 {
            (
                (metrics.i8_batches(), metrics.f32_batches()),
                (metrics.screen_i8(), metrics.screen_f32()),
            )
        } else {
            (
                (metrics.f32_batches(), metrics.i8_batches()),
                (metrics.screen_f32(), metrics.screen_i8()),
            )
        };
        assert!(active_batches > 0, "{precision:?}: no screened batches");
        assert_eq!(idle_batches, 0, "{precision:?}: wrong-mode batches");
        let (candidates, survivors) = active;
        // BMM screens every (user, item) score of every batch.
        assert!(candidates > 0, "{precision:?}: screen evaluated nothing");
        assert!(
            survivors <= candidates,
            "{precision:?}: survivors exceed candidates"
        );
        assert_eq!(idle, (0, 0), "{precision:?}: wrong-mode screen counts");
        // Per-shard counters carry the same lanes as the rollup.
        assert_eq!(
            metrics
                .shards
                .iter()
                .map(|s| if expect_i8 {
                    s.screen_candidates_i8
                } else {
                    s.screen_candidates_f32
                })
                .sum::<u64>(),
            candidates
        );
    }
}

/// A model whose factors quantize degenerately (subnormal rows) must
/// silently serve f64-direct under forced i8 — exactness before speed.
#[test]
fn degenerate_quantization_serves_f64_direct() {
    let users = Matrix::from_fn(6, 4, |r, c| ((r + c) as f64 + 1.0) * 1.0e-320);
    let items = Matrix::from_fn(12, 4, |r, c| ((r * c) as f64 + 1.0) * 1.0e-320);
    let model = Arc::new(MfModel::new("subnormal", users, items).unwrap());
    let f64_engine = engine_at(&model, Precision::F64);
    let i8_engine = engine_at(&model, Precision::I8Rescore);
    for key in f64_engine.backend_keys() {
        let request = QueryRequest::top_k(3);
        let want = f64_engine.execute_with(key, &request).unwrap();
        let got = i8_engine.execute_with(key, &request).unwrap();
        assert_eq!(bits(&got), bits(&want), "{key}");
        assert_eq!(
            got.precision,
            Precision::F64,
            "{key} must fall back to f64-direct on degenerate quantization"
        );
    }
}
