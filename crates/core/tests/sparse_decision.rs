//! OPTIMUS decision regression for the sparse backend.
//!
//! The planner's job on a hybrid registry is to route each *workload* to
//! the right execution family: a ≥99%-sparse catalog must go to the
//! inverted index, and the paper's dense reference workloads (Netflix and
//! GloVe stand-ins) must keep their dense winners — registering the sparse
//! backend must never regress a dense catalog's plan. These are pinned
//! end-to-end through [`Engine::prepare`], the same sampled decision
//! production requests take.

use mips_core::engine::{Engine, EngineBuilder, QueryRequest};
use mips_core::optimus::OptimusConfig;
use mips_core::Precision;
use mips_data::catalog::find;
use mips_data::sparse::{synth_sparse_model, SparseSynthConfig};
use mips_data::MfModel;
use std::sync::Arc;

/// An engine with every built-in backend, planning deterministically
/// (fixed sampling seed, generous sample so the measured gap dominates
/// timer noise) under plain f64 execution.
fn engine_over(model: MfModel) -> Engine {
    EngineBuilder::new()
        .model(Arc::new(model))
        .with_default_backends()
        .precision(Precision::F64)
        .optimus(OptimusConfig {
            sample_fraction: 0.05,
            seed: 0xDEC1DE,
            ..OptimusConfig::default()
        })
        .build()
        .expect("engine assembles")
}

/// A ≥99%-sparse catalog routes to the inverted index. The margin is not
/// subtle — at 1% density the postings walk touches ~1% of the work a
/// dense scan does — so the sampled decision is stable across hosts.
#[test]
fn optimus_routes_sparse_catalogs_to_the_inverted_index() {
    let engine = engine_over(synth_sparse_model(&SparseSynthConfig {
        num_users: 400,
        num_items: 900,
        num_factors: 96,
        density: 0.01,
        dense_head: 0,
        seed: 0x5AB5E,
    }));
    let plan = engine.prepare(10).expect("plan");
    assert_eq!(
        plan.backend_key(),
        "sparse",
        "a 99%-sparse catalog must plan to the inverted index; estimates: {:?}",
        plan.estimates()
    );
    // The decision is also correct, not just pinned: the winner serves
    // requests (exactness is covered by the identity suites).
    let response = engine
        .execute(&QueryRequest::top_k(10).users(vec![0, 1]))
        .expect("serve through the sparse plan");
    assert_eq!(response.backend, "Sparse-II");
}

/// Dense reference workloads keep dense winners: the sparse backend is a
/// candidate but must lose the sampled race on fully dense factors, where
/// postings cover every coordinate and the index is pure overhead.
#[test]
fn optimus_keeps_dense_winners_on_dense_catalogs() {
    for spec in [
        find("Netflix", "DSGD", 50).expect("catalog spec"),
        find("GloVe", "", 50).expect("catalog spec"),
    ] {
        let model = spec.build(0.1);
        let name = model.name().to_string();
        let engine = engine_over(model);
        let plan = engine.prepare(10).expect("plan");
        assert_ne!(
            plan.backend_key(),
            "sparse",
            "{name}: a fully dense catalog must not plan to the inverted \
             index; estimates: {:?}",
            plan.estimates()
        );
    }
}
