//! The engine's error contract: malformed requests return typed
//! [`MipsError`] values — they never panic — for every registered backend,
//! on the deterministic edge cases and under randomized fuzzing.

use mips_core::engine::{EngineBuilder, ExclusionSet, MipsError, QueryRequest, UserSelection};
use mips_core::maximus::MaximusConfig;
use mips_data::synth::{synth_model, SynthConfig};
use proptest::prelude::*;
use std::sync::Arc;

const NUM_USERS: usize = 14;
const NUM_ITEMS: usize = 22;

/// One engine shared across cases (solvers build once, not per fuzz case).
fn shared_engine() -> &'static mips_core::engine::Engine {
    static ENGINE: std::sync::OnceLock<mips_core::engine::Engine> = std::sync::OnceLock::new();
    ENGINE.get_or_init(engine)
}

fn engine() -> mips_core::engine::Engine {
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: NUM_USERS,
        num_items: NUM_ITEMS,
        num_factors: 6,
        ..SynthConfig::default()
    }));
    EngineBuilder::new()
        .model(model)
        .register(mips_core::engine::BmmFactory)
        .register(mips_core::engine::MaximusFactory::new(MaximusConfig {
            num_clusters: 3,
            block_size: 8,
            ..MaximusConfig::default()
        }))
        .register(mips_core::engine::LempFactory::default())
        .register(mips_core::engine::FexiproFactory::si())
        .register(mips_core::engine::FexiproFactory::sir())
        .build()
        .expect("engine assembles")
}

#[test]
fn k_zero_is_a_typed_error_for_every_backend() {
    let engine = engine();
    for key in engine.backend_keys() {
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(0))
                .unwrap_err(),
            MipsError::InvalidK {
                k: 0,
                num_items: NUM_ITEMS
            },
            "backend {key}"
        );
    }
    assert_eq!(
        engine.execute(&QueryRequest::top_k(0)).unwrap_err(),
        MipsError::InvalidK {
            k: 0,
            num_items: NUM_ITEMS
        }
    );
}

#[test]
fn k_above_catalog_is_a_typed_error_for_every_backend() {
    let engine = engine();
    for key in engine.backend_keys() {
        for k in [NUM_ITEMS + 1, NUM_ITEMS * 10, usize::MAX] {
            assert_eq!(
                engine
                    .execute_with(key, &QueryRequest::top_k(k))
                    .unwrap_err(),
                MipsError::InvalidK {
                    k,
                    num_items: NUM_ITEMS
                },
                "backend {key}, k {k}"
            );
        }
    }
}

#[test]
fn out_of_range_users_are_typed_errors_for_every_backend() {
    let engine = engine();
    for key in engine.backend_keys() {
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users(vec![0, NUM_USERS]))
                .unwrap_err(),
            MipsError::UserOutOfRange {
                user: NUM_USERS,
                num_users: NUM_USERS
            },
            "backend {key}"
        );
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users_range(0..NUM_USERS + 3))
                .unwrap_err(),
            MipsError::UserOutOfRange {
                user: NUM_USERS,
                num_users: NUM_USERS
            },
            "backend {key}"
        );
    }
}

#[test]
fn empty_user_selections_are_typed_errors_for_every_backend() {
    let engine = engine();
    for key in engine.backend_keys() {
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users(Vec::new()))
                .unwrap_err(),
            MipsError::EmptyUserList,
            "backend {key}"
        );
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users_range(5..5))
                .unwrap_err(),
            MipsError::EmptyUserList,
            "backend {key}"
        );
    }
}

#[test]
fn out_of_range_exclusions_are_typed_errors() {
    let engine = engine();
    let excl = ExclusionSet::from_pairs([(0usize, NUM_ITEMS as u32)]);
    for key in engine.backend_keys() {
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).exclude(excl.clone()))
                .unwrap_err(),
            MipsError::ItemOutOfRange {
                item: NUM_ITEMS as u32,
                num_items: NUM_ITEMS
            },
            "backend {key}"
        );
    }
}

/// Assembles a request from fuzzed raw parts. Selection modes:
/// 0 = all, 1 = range, 2 = ids.
fn assemble(
    k: usize,
    mode: u8,
    start: usize,
    end: usize,
    ids: Vec<usize>,
    exclusions: Vec<(usize, u32)>,
) -> QueryRequest {
    let mut request = QueryRequest::top_k(k);
    request.users = match mode {
        0 => UserSelection::All,
        1 => UserSelection::Range(start..end),
        _ => UserSelection::Ids(ids),
    };
    if !exclusions.is_empty() {
        request = request.exclude(ExclusionSet::from_pairs(exclusions));
    }
    request
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any request — valid or garbage — produces `Ok` or a typed `Err`,
    /// never a panic, on every registered backend; and `Ok` appears exactly
    /// when validation accepts the request.
    #[test]
    fn random_requests_never_abort(
        k in 0usize..60,
        mode in 0u8..3,
        start in 0usize..30,
        end in 0usize..30,
        ids in proptest::collection::vec(0usize..40, 0..12),
        exclusions in proptest::collection::vec((0usize..20, 0u32..40), 0..10),
    ) {
        let engine = shared_engine();
        let request = assemble(k, mode, start, end, ids, exclusions);
        let valid = request.validate(&engine.model()).is_ok();
        for key in engine.backend_keys() {
            match engine.execute_with(key, &request) {
                Ok(response) => {
                    prop_assert!(valid, "{key} accepted an invalid request: {request:?}");
                    prop_assert_eq!(response.results.len(), request.result_len(&engine.model()));
                }
                Err(_) => prop_assert!(!valid, "{key} rejected a valid request: {request:?}"),
            }
        }
        // The planning path agrees with the direct path on acceptance.
        match engine.execute(&request) {
            Ok(_) => prop_assert!(valid),
            Err(_) => prop_assert!(!valid),
        }
    }

    /// Fuzzed *invalid* requests always return `Err` (the acceptance
    /// criterion stated directly): k is out of domain, a user is out of
    /// range, or the selection is empty.
    #[test]
    fn random_invalid_requests_always_err(
        selector in 0u8..4,
        k in 1usize..20,
        bad_user in 14usize..80,
        ids in proptest::collection::vec(0usize..14, 1..6),
    ) {
        let engine = shared_engine();
        let request = match selector {
            0 => QueryRequest::top_k(0),
            1 => QueryRequest::top_k(23 + k),
            2 => {
                let mut with_bad = ids.clone();
                with_bad.push(bad_user);
                QueryRequest::top_k(k.min(22)).users(with_bad)
            }
            _ => QueryRequest::top_k(k.min(22)).users(Vec::new()),
        };
        for key in engine.backend_keys() {
            prop_assert!(
                engine.execute_with(key, &request).is_err(),
                "{key} accepted {request:?}"
            );
        }
        prop_assert!(engine.execute(&request).is_err());
        prop_assert!(engine.prepare(0).is_err());
    }
}
