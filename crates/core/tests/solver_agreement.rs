//! Property tests: every registered backend must be semantically exact on
//! random models, including tie-heavy ones.

use mips_core::engine::{
    BmmFactory, FexiproFactory, LempFactory, MaximusFactory, SolverFactory, SparseFactory,
};
use mips_core::maximus::{ClusteringAlgo, MaximusConfig};
use mips_core::verify::check_all_topk;
use mips_data::MfModel;
use mips_lemp::LempConfig;
use mips_linalg::Matrix;
use mips_sparse::SparseConfig;
use proptest::prelude::*;
use std::sync::Arc;

fn all_backends() -> Vec<Arc<dyn SolverFactory>> {
    vec![
        Arc::new(BmmFactory),
        Arc::new(MaximusFactory::new(MaximusConfig {
            num_clusters: 3,
            kmeans_iters: 2,
            block_size: 8,
            item_blocking: true,
            clustering: ClusteringAlgo::KMeans,
            seed: 5,
        })),
        Arc::new(MaximusFactory::new(MaximusConfig {
            num_clusters: 2,
            kmeans_iters: 2,
            block_size: 4,
            item_blocking: false,
            clustering: ClusteringAlgo::Spherical,
            seed: 6,
        })),
        Arc::new(LempFactory::new(LempConfig {
            bucket_size: 8,
            tune_sample: 2,
            ..LempConfig::default()
        })),
        Arc::new(FexiproFactory::si()),
        Arc::new(FexiproFactory::sir()),
        Arc::new(SparseFactory::new(SparseConfig::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_solver_is_semantically_exact(n_users in 1usize..12,
                                          n_items in 1usize..60,
                                          f in 1usize..10,
                                          k in 0usize..9,
                                          seed in 0u64..400) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let users = Matrix::from_fn(n_users, f, |_, _| next());
        let items = Matrix::from_fn(n_items, f, |_, _| next());
        let model = Arc::new(MfModel::new("prop", users, items).unwrap());
        for factory in all_backends() {
            let solver = factory.build(&model).unwrap();
            let results = solver.query_all(k);
            if let Err(msg) = check_all_topk(&model, k, &results, 1e-9) {
                prop_assert!(false, "{} failed: {}", solver.name(), msg);
            }
        }
    }

    #[test]
    fn every_solver_is_exact_under_ties(n_items in 2usize..40,
                                        f in 1usize..5,
                                        k in 1usize..8,
                                        seed in 0u64..200) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 60) % 3) as f64 - 1.0
        };
        let users = Matrix::from_fn(4, f, |_, _| next());
        let items = Matrix::from_fn(n_items, f, |_, _| next());
        let model = Arc::new(MfModel::new("ties", users, items).unwrap());
        // With quantized data, exact item-level agreement must hold because
        // every solver breaks ties toward the smaller id.
        let reference = BmmFactory.build(&model).unwrap().query_all(k);
        for factory in all_backends() {
            let solver = factory.build(&model).unwrap();
            let results = solver.query_all(k);
            for u in 0..4 {
                prop_assert_eq!(&results[u].items, &reference[u].items,
                                "{} disagrees for user {}", solver.name(), u);
            }
        }
    }
}
