//! Deterministic model checking of `mips-core`'s concurrency protocols.
//!
//! Compiled only under `--cfg mips_model_check`
//! (`RUSTFLAGS="--cfg mips_model_check" cargo test -p mips-core --test
//! model_check`); in a normal build this file is empty. Under the cfg the
//! [`crate::sync`](mips_core::sync) facade resolves to the vendored `loom`
//! shim, so every lock, condvar, atomic, and spawn below is a yield point
//! of a deterministic scheduler that exhaustively explores thread
//! interleavings (bounded preemptions, DFS over branch points). A failing
//! test prints a dot-separated trace seed; re-running with
//! `MIPS_MODEL_REPLAY=<seed>` replays exactly that interleaving.
//!
//! Four protocol invariants from the serving runtime are proved here, plus
//! two regression pins for behaviors earlier PRs fixed, a seeded-bug suite
//! demonstrating the checker actually catches planted races, and
//! determinism/replay assertions over the checker itself.

#![cfg(mips_model_check)]

use loom::{explore, model, replay, Config};
use mips_core::model_support as ms;
use mips_core::sync::atomic::{AtomicU64, Ordering};
use mips_core::sync::{thread, Arc, Condvar, Mutex};
use mips_core::{MipsError, Precision};
use std::time::{Duration, Instant};

/// A toy queue item: key models the epoch a sub-request is pinned to.
#[derive(Debug, Clone)]
struct Toy {
    epoch: u64,
    at: Instant,
}

impl Toy {
    fn new(epoch: u64) -> Toy {
        Toy {
            epoch,
            at: Instant::now(),
        }
    }
}

impl ms::QueueItem for Toy {
    type Key = u64;
    fn key(&self) -> u64 {
        self.epoch
    }
    fn weight(&self) -> usize {
        1
    }
    fn batchable(&self, _max_batch: usize) -> bool {
        true
    }
    fn submitted_at(&self) -> Instant {
        self.at
    }
}

fn policy(max_batch: usize, window: Duration) -> ms::BatchPolicy {
    ms::BatchPolicy {
        enabled: true,
        max_batch,
        window,
    }
}

// ---------------------------------------------------------------------------
// Invariant 1: epoch refcounts never leak or double-free.
// ---------------------------------------------------------------------------

/// A reader snapshotting the epoch cell concurrently with a swap either
/// sees the old epoch or the new one — never a mixture — and once the swap
/// lands and every snapshot drops, the old epoch is reclaimed (`Weak`
/// upgrade fails). `Arc` stays std under the model, so the refcount
/// observations are exact.
#[test]
fn epoch_swap_never_leaks_or_tears_the_old_epoch() {
    model(|| {
        let cell = Arc::new(ms::ArcCell::new(Arc::new(1u64)));
        let weak_old = Arc::downgrade(&cell.load());

        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let snapshot = cell.load();
                // A snapshot is internally consistent: it is one of the two
                // epochs, never a torn intermediate.
                assert!(*snapshot == 1 || *snapshot == 2, "torn epoch snapshot");
                *snapshot
            })
        };
        let swapper = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.swap_with(|old| Arc::new(**old + 1));
            })
        };
        reader.join().unwrap();
        swapper.join().unwrap();

        // The swap landed and no snapshot holder remains: the old epoch
        // must be gone in every interleaving — anything else is a leak.
        assert_eq!(*cell.load(), 2);
        assert!(
            weak_old.upgrade().is_none(),
            "old epoch leaked past its last holder"
        );
    });
}

// ---------------------------------------------------------------------------
// Regression pin (PR 5): epoch caches build outside the lock, install by
// compare-and-swap, and losers adopt the winner.
// ---------------------------------------------------------------------------

/// Two first-touch racers may each run the builder (no convoying behind a
/// held lock — that is the protocol's point), but exactly one value is
/// installed and every caller ends up holding that single canonical
/// instance, in every interleaving.
#[test]
fn cache_racers_build_outside_the_lock_and_adopt_one_winner() {
    model(|| {
        let cell: ms::CacheCell<Arc<u64>> = Arc::new(Mutex::new(None));
        let builds = Arc::new(AtomicU64::new(0));

        let racer = {
            let cell = Arc::clone(&cell);
            let builds = Arc::clone(&builds);
            thread::spawn(move || {
                ms::get_or_build(&cell, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, MipsError>(Arc::new(10))
                })
                .unwrap()
            })
        };
        let mine = ms::get_or_build(&cell, || {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok::<_, MipsError>(Arc::new(20))
        })
        .unwrap();
        let theirs = racer.join().unwrap();

        // Both racers hold the same installed instance (the loser adopted
        // the winner), and a later caller adopts it without building.
        assert!(Arc::ptr_eq(&mine, &theirs), "racers diverged");
        let built_before = builds.load(Ordering::SeqCst);
        assert!(built_before >= 1 && built_before <= 2);
        let late = ms::get_or_build(&cell, || {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok::<_, MipsError>(Arc::new(30))
        })
        .unwrap();
        assert!(Arc::ptr_eq(&late, &mine), "late caller missed the cache");
        assert_eq!(builds.load(Ordering::SeqCst), built_before);
    });
}

// ---------------------------------------------------------------------------
// Invariant 2: the MPMC queue has no lost wakeups under concurrent
// submit / shutdown.
// ---------------------------------------------------------------------------

/// Whatever the interleaving of a producer, a closer, and a draining
/// consumer, every successfully admitted item is popped: `pop` never
/// returns `None` with items still queued, and `close` wakes a parked
/// consumer instead of stranding it (a lost wakeup would surface as a
/// deadlock report).
#[test]
fn queue_submit_shutdown_loses_no_items_and_no_wakeups() {
    model(|| {
        let queue = Arc::new(ms::BoundedQueue::<Toy>::new(4));

        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || match queue.push_all(vec![Toy::new(1)], false) {
                Ok(()) => true,
                Err(MipsError::ServerShutdown) => false,
                Err(other) => panic!("unexpected push error: {other:?}"),
            })
        };
        let closer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.close())
        };

        let mut popped = 0usize;
        while queue.pop().is_some() {
            popped += 1;
        }
        let admitted = producer.join().unwrap();
        closer.join().unwrap();
        assert_eq!(
            popped, admitted as usize,
            "an admitted item was lost (or a phantom item appeared) across shutdown"
        );
    });
}

/// A blocking producer parked on a full queue is always woken by the
/// consumer's pops: with capacity 1 and two admissions, every
/// interleaving must drain both items (a missed `not_full` notification
/// would deadlock, which the model reports).
#[test]
fn blocking_push_is_always_woken_by_pop() {
    model(|| {
        let queue = Arc::new(ms::BoundedQueue::<Toy>::new(1));
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                queue.push_all(vec![Toy::new(1)], true).unwrap();
                queue.push_all(vec![Toy::new(1)], true).unwrap();
            })
        };
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        producer.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// Invariant 3: the batcher never coalesces across epochs.
// ---------------------------------------------------------------------------

/// An epoch-2 item queued ahead of (or racing with) an epoch-1 leader
/// never joins the leader's batch; it stays queued for its own batch. The
/// batch key is the epoch pin, so this must hold in every interleaving.
#[test]
fn batcher_never_coalesces_across_epochs() {
    model(|| {
        let queue = Arc::new(ms::BoundedQueue::<Toy>::new(8));
        // An old-epoch item is already queued when the new-epoch leader is
        // popped; another old-epoch item races in while the batch gathers.
        queue.push_all(vec![Toy::new(2)], false).unwrap();
        let racer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                queue
                    .push_all(vec![Toy::new(2), Toy::new(1)], false)
                    .unwrap();
            })
        };

        let batch = ms::collect_batch(&queue, Toy::new(1), &policy(8, Duration::ZERO));
        assert!(
            batch.iter().all(|item| item.epoch == 1),
            "batch coalesced across epochs: {:?}",
            batch.iter().map(|i| i.epoch).collect::<Vec<_>>()
        );
        racer.join().unwrap();

        // The other epoch's items are intact in queue order, ready to lead
        // their own batch.
        queue.close();
        let mut left = Vec::new();
        while let Some(item) = queue.pop() {
            left.push(item.epoch);
        }
        let stranded_old: usize = left.iter().filter(|&&e| e == 2).count();
        assert_eq!(stranded_old, 2, "old-epoch items vanished: {left:?}");
    });
}

// ---------------------------------------------------------------------------
// Regression pin (PR 6): the deadline batcher's hold-open window is
// anchored at pop time, not the leader's submission time.
// ---------------------------------------------------------------------------

/// A leader that already sat in the queue for a full window still absorbs
/// a concurrent arrival: the pop-anchored deadline keeps the window open
/// (the old submission-anchored deadline flushed immediately, losing
/// exactly the coalescing a backlog makes valuable). The model proves it
/// for every producer/consumer interleaving, including the producer
/// arriving only after the batcher has parked in its timed wait.
#[test]
fn stale_leader_hold_open_is_anchored_at_pop_time() {
    model(|| {
        let window = Duration::from_secs(60);
        let queue = Arc::new(ms::BoundedQueue::<Toy>::new(8));
        let racer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                queue.push_all(vec![Toy::new(1)], false).unwrap();
            })
        };

        let mut leader = Toy::new(1);
        leader.at = Instant::now()
            .checked_sub(window)
            .expect("monotonic clock too young for a 60s backdate");
        // max_batch 2 = leader + one absorbed arrival: the batch fills and
        // flushes the moment the racer's item lands, so no schedule ever
        // waits out the (real-time) window.
        let batch = ms::collect_batch(&queue, leader, &policy(2, window));
        assert_eq!(
            batch.len(),
            2,
            "pop-anchored window failed to absorb the concurrent arrival"
        );
        racer.join().unwrap();
    });
}

/// The latency cap still bounds the hold-open: a leader older than
/// `QUEUE_LATENCY_CAP` windows flushes immediately with whatever the
/// backlog drain produced, instead of adding another window of delay.
#[test]
fn latency_capped_leader_flushes_immediately() {
    model(|| {
        let window = Duration::from_secs(10);
        let queue = ms::BoundedQueue::<Toy>::new(8);
        let mut ancient = Toy::new(1);
        ancient.at = Instant::now()
            .checked_sub(window * (ms::QUEUE_LATENCY_CAP + 1))
            .expect("monotonic clock too young for the backdate");
        let batch = ms::collect_batch(&queue, ancient, &policy(8, window));
        assert_eq!(batch.len(), 1, "capped leader held the batch open");
    });
}

// ---------------------------------------------------------------------------
// Invariant 4: metrics are rolled up before waiters wake.
// ---------------------------------------------------------------------------

/// The moment `Pending::wait` returns, the server-wide counters already
/// reflect the finished request — completion count and latency sample —
/// no matter how the two sub-request completions interleave with the
/// waiter. This is the metrics-before-wake ordering in `finish_one`.
#[test]
fn metrics_are_rolled_up_before_the_waiter_wakes() {
    model(|| {
        let counters = Arc::new(ms::ServerCounters::default());
        let pending = Arc::new(ms::Pending::with_counters(
            2,
            Instant::now(),
            Some(Arc::clone(&counters)),
            7,
        ));
        pending.set_parts(2);

        let workers: Vec<_> = (0..2)
            .map(|part| {
                let pending = Arc::clone(&pending);
                thread::spawn(move || {
                    pending.complete(
                        &ms::SubUsers::Range {
                            users: part..part + 1,
                            out_start: part,
                        },
                        vec![ms::TopKList::empty()],
                        "toy",
                        Precision::F64,
                    );
                })
            })
            .collect();

        let response = pending.wait().expect("both parts completed");
        // The waiter is awake: the rollup must already be visible.
        assert_eq!(response.epoch, 7);
        assert_eq!(response.results.len(), 2);
        assert_eq!(
            ms::server_completed(&counters),
            1,
            "completed lagged the wakeup"
        );
        assert_eq!(ms::server_failed(&counters), 0);
        assert_eq!(
            ms::server_latency_count(&counters),
            1,
            "latency sample lagged the wakeup"
        );
        for worker in workers {
            worker.join().unwrap();
        }
    });
}

/// Same ordering on the failure path: a request finished by an error has
/// `completed` and `failed` rolled up before the waiter observes the
/// error, and a completion racing the failure never double-finishes.
#[test]
fn failed_requests_roll_up_before_the_waiter_wakes() {
    model(|| {
        let counters = Arc::new(ms::ServerCounters::default());
        let pending = Arc::new(ms::Pending::with_counters(
            2,
            Instant::now(),
            Some(Arc::clone(&counters)),
            3,
        ));
        pending.set_parts(2);

        let completer = {
            let pending = Arc::clone(&pending);
            thread::spawn(move || {
                pending.complete(
                    &ms::SubUsers::Range {
                        users: 0..1,
                        out_start: 0,
                    },
                    vec![ms::TopKList::empty()],
                    "toy",
                    Precision::F64,
                );
            })
        };
        let failer = {
            let pending = Arc::clone(&pending);
            thread::spawn(move || {
                pending.fail(MipsError::ServerShutdown);
            })
        };

        let err = pending.wait().expect_err("the failure must win");
        assert!(matches!(err, MipsError::ServerShutdown));
        assert_eq!(ms::server_completed(&counters), 1);
        assert_eq!(ms::server_failed(&counters), 1, "failed lagged the wakeup");
        completer.join().unwrap();
        failer.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// Seeded-bug suite: the checker must CATCH these planted defects. Each is
// a miniature of a real bug class the invariants above guard against.
// ---------------------------------------------------------------------------

fn small() -> Config {
    Config {
        preemption_bound: 2,
        max_schedules: 100_000,
    }
}

/// A torn refcount release: load-then-store instead of `fetch_sub`. Two
/// droppers racing lose a decrement, so the count never reaches zero — the
/// leak/double-free class the epoch suite guards. The checker must find
/// the interleaving.
#[test]
fn seeded_torn_refcount_release_is_caught() {
    let report = explore(small(), || {
        let count = Arc::new(AtomicU64::new(2));
        let dropper = {
            let count = Arc::clone(&count);
            thread::spawn(move || {
                // BUG (seeded): non-atomic decrement.
                let v = count.load(Ordering::SeqCst);
                count.store(v - 1, Ordering::SeqCst);
            })
        };
        let v = count.load(Ordering::SeqCst);
        count.store(v - 1, Ordering::SeqCst);
        dropper.join().unwrap();
        assert_eq!(
            count.load(Ordering::SeqCst),
            0,
            "torn release: refcount leaked or double-freed"
        );
    });
    let failure = report
        .failure
        .expect("the seeded refcount race must be caught");
    assert!(
        failure.message.contains("torn release"),
        "unexpected failure: {}",
        failure.message
    );
}

/// A toy queue whose push forgets to notify: a consumer that parked
/// before the push is never woken. The checker must report the lost
/// wakeup as a deadlock.
#[test]
fn seeded_dropped_notify_is_caught_as_deadlock() {
    let report = explore(small(), || {
        let chan = Arc::new((Mutex::new(Vec::<u32>::new()), Condvar::new()));
        let producer = {
            let chan = Arc::clone(&chan);
            thread::spawn(move || {
                chan.0.lock().unwrap().push(1);
                // BUG (seeded): no chan.1.notify_all() here.
            })
        };
        let (lock, cv) = &*chan;
        let mut items = lock.lock().unwrap();
        while items.is_empty() {
            items = cv.wait(items).unwrap();
        }
        drop(items);
        producer.join().unwrap();
    });
    let failure = report.failure.expect("the dropped notify must be caught");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        failure.message
    );
}

/// A notify-before-rollup inversion of the metrics invariant: the waiter
/// can wake and read the counter before the worker bumps it. The checker
/// must find that interleaving.
#[test]
fn seeded_notify_before_rollup_is_caught() {
    let report = explore(small(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let rolled_up = Arc::new(AtomicU64::new(0));
        let worker = {
            let state = Arc::clone(&state);
            let rolled_up = Arc::clone(&rolled_up);
            thread::spawn(move || {
                *state.0.lock().unwrap() = true;
                state.1.notify_all();
                // BUG (seeded): rollup after the notify — the real
                // finish_one rolls up first.
                rolled_up.fetch_add(1, Ordering::SeqCst);
            })
        };
        let (lock, cv) = &*state;
        let mut done = lock.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        drop(done);
        assert_eq!(
            rolled_up.load(Ordering::SeqCst),
            1,
            "metrics lagged the wakeup"
        );
        worker.join().unwrap();
    });
    let failure = report.failure.expect("the inverted rollup must be caught");
    assert!(
        failure.message.contains("metrics lagged"),
        "unexpected failure: {}",
        failure.message
    );
}

// ---------------------------------------------------------------------------
// The checker itself: failure traces are deterministic and replayable.
// ---------------------------------------------------------------------------

/// The same seeded bug explored twice yields byte-identical traces and
/// schedules, and replaying the printed trace seed reproduces the failure
/// in exactly one schedule — the contract behind `MIPS_MODEL_REPLAY`.
#[test]
fn failure_traces_are_deterministic_and_replayable() {
    fn seeded() -> impl Fn() + Send + Sync + 'static {
        || {
            let count = Arc::new(AtomicU64::new(2));
            let dropper = {
                let count = Arc::clone(&count);
                thread::spawn(move || {
                    let v = count.load(Ordering::SeqCst);
                    count.store(v - 1, Ordering::SeqCst);
                })
            };
            let v = count.load(Ordering::SeqCst);
            count.store(v - 1, Ordering::SeqCst);
            dropper.join().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 0, "lost decrement");
        }
    }

    let first = explore(small(), seeded()).failure.expect("must fail");
    let second = explore(small(), seeded()).failure.expect("must fail");
    assert_eq!(
        first.trace, second.trace,
        "exploration is not deterministic"
    );
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.schedule_index, second.schedule_index);

    let replayed = replay(&first.trace, seeded());
    assert_eq!(replayed.schedules, 1);
    let failure = replayed.failure.expect("replay must reproduce the failure");
    assert!(failure.message.contains("lost decrement"));
}
