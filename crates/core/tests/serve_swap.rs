//! Swap-under-load stress suite for the serving runtime.
//!
//! The load-bearing properties of hot model swap:
//!
//! * **Per-epoch bit-identity.** Every response reports the model epoch it
//!   was served from, and its results are bit-identical to a sequential
//!   `Engine::execute` on a fresh engine holding that epoch's model — no
//!   matter how many swaps landed while the request was in flight.
//! * **Zero lost or failed requests.** Swaps (including ones that change
//!   `num_users` and force re-sharding) never drop, fail, or wedge a
//!   request.
//! * **Old epochs are reclaimed.** Once the last in-flight request of an
//!   epoch completes and the topology has moved on, nothing keeps the old
//!   model (or its derived indexes and plans) alive.
//!
//! A single-backend (BMM) engine is used throughout so the planning
//! decision is deterministic and a fresh reference engine on the same
//! model is guaranteed to serve bit-identically.

use mips_core::engine::{BmmFactory, Engine, EngineBuilder, ExclusionSet, QueryRequest};
use mips_core::serve::{IndexScope, ServerBuilder};
use mips_data::synth::{synth_model, SynthConfig};
use mips_data::MfModel;
use mips_topk::TopKList;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn model(users: usize, items: usize, seed: u64) -> Arc<MfModel> {
    Arc::new(synth_model(&SynthConfig {
        num_users: users,
        num_items: items,
        num_factors: 8,
        seed,
        ..SynthConfig::default()
    }))
}

fn bmm_engine(model: &Arc<MfModel>) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(model))
            .register(BmmFactory)
            .build()
            .unwrap(),
    )
}

/// A request corpus valid on **every** model of the rotation: users and
/// exclusions stay inside the smallest user/item counts, while all-user
/// requests adapt to each epoch's size by construction.
fn swap_corpus(min_users: usize, min_items: usize) -> Vec<QueryRequest> {
    let mut exclusions = ExclusionSet::new();
    for u in [0, min_users / 2, min_users - 1] {
        for item in 0..5u32 {
            exclusions.insert(u, item * 2);
        }
    }
    let exclusions = Arc::new(exclusions);
    vec![
        QueryRequest::top_k(1),
        QueryRequest::top_k(5),
        QueryRequest::top_k(min_items),
        QueryRequest::top_k(3).users_range(0..min_users),
        QueryRequest::top_k(4).users_range(min_users / 2 - 1..min_users / 2 + 2),
        QueryRequest::top_k(2).users(vec![min_users - 1, 0, min_users / 2, 0]),
        QueryRequest::top_k(6).users(vec![1, 1, min_users - 1]),
        QueryRequest::top_k(5).exclude(Arc::clone(&exclusions)),
        QueryRequest::top_k(2)
            .users(vec![0, min_users - 1])
            .exclude(exclusions),
    ]
}

#[test]
fn swap_under_load_is_bit_identical_per_epoch_with_zero_lost_requests() {
    swap_under_load_for_scope(IndexScope::Global);
}

#[test]
fn swap_under_load_with_per_shard_indexes_is_bit_identical_per_epoch() {
    // Re-sharding swaps change every shard's bounds, so each new epoch
    // rebuilds its per-shard tier from scratch — under full load.
    swap_under_load_for_scope(IndexScope::PerShard);
}

#[test]
fn swap_under_load_with_auto_scope_is_bit_identical_per_epoch() {
    swap_under_load_for_scope(IndexScope::Auto);
}

fn swap_under_load_for_scope(scope: IndexScope) {
    // Three models, rotated under load: B shrinks the user count (forcing
    // a re-shard), C changes the catalog size.
    let models = [model(97, 120, 42), model(61, 120, 7), model(97, 90, 13)];
    let min_users = 61;
    let min_items = 90;
    let corpus = swap_corpus(min_users, min_items);

    // Expected results per model, from fresh sequential engines.
    let expected: Vec<Vec<Vec<TopKList>>> = models
        .iter()
        .map(|m| {
            let reference = bmm_engine(m);
            corpus
                .iter()
                .map(|request| reference.execute(request).unwrap().results)
                .collect()
        })
        .collect();

    let engine = bmm_engine(&models[0]);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(3)
        .max_batch(8)
        .batch_window(Duration::from_micros(300))
        .index_scope(scope)
        .build()
        .unwrap();

    // Epoch id -> model index, fed by the swapper as swaps are accepted.
    let epoch_models = Mutex::new(vec![(engine.epoch(), 0usize)]);
    let done = AtomicBool::new(false);

    const SUBMITTERS: usize = 4;
    const PASSES: usize = 4;
    let total = SUBMITTERS * PASSES * corpus.len();
    let observed: Mutex<Vec<(usize, u64, Vec<TopKList>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // The swapper: rotate through the models until the load finishes.
        scope.spawn(|| {
            let mut next = 1usize;
            while !done.load(Ordering::Relaxed) {
                let id = engine.swap_model(Arc::clone(&models[next])).unwrap();
                epoch_models.lock().unwrap().push((id, next));
                next = (next + 1) % models.len();
                std::thread::sleep(Duration::from_millis(1));
            }
        });

        for t in 0..SUBMITTERS {
            let server = &server;
            let corpus = &corpus;
            let observed = &observed;
            scope.spawn(move || {
                let mut mine = Vec::new();
                for pass in 0..PASSES {
                    let mut handles = Vec::new();
                    for i in 0..corpus.len() {
                        let idx = (i * 5 + t + pass) % corpus.len();
                        handles.push((idx, server.submit(&corpus[idx]).unwrap()));
                    }
                    for (idx, handle) in handles {
                        let response = handle.wait().unwrap();
                        mine.push((idx, response.epoch, response.results));
                    }
                }
                observed.lock().unwrap().extend(mine);
            });
        }

        // Stop the swapper once all requests have completed. (The scope
        // only joins after this closure returns, so completion is flagged
        // from a watcher thread.)
        let server_ref = &server;
        let done_ref = &done;
        scope.spawn(move || {
            while server_ref.metrics().completed < total as u64 {
                std::thread::sleep(Duration::from_millis(1));
            }
            done_ref.store(true, Ordering::Relaxed);
        });
    });

    // Every response matches the sequential reference for the epoch it
    // reports serving from — down to the bit.
    let epoch_models = epoch_models.into_inner().unwrap();
    let model_of = |epoch: u64| -> usize {
        epoch_models
            .iter()
            .find(|&&(id, _)| id == epoch)
            .unwrap_or_else(|| panic!("response reported unknown epoch {epoch}"))
            .1
    };
    let observed = observed.into_inner().unwrap();
    let total = SUBMITTERS * PASSES * corpus.len();
    assert_eq!(observed.len(), total, "every request returned");
    for (idx, epoch, results) in &observed {
        let m = model_of(*epoch);
        assert_eq!(
            results, &expected[m][*idx],
            "request {idx} diverged from the sequential engine on epoch {epoch} (model {m})"
        );
    }

    // Nothing was lost, rejected, or failed; the server observed swaps.
    let metrics = server.metrics();
    assert_eq!(metrics.submitted, total as u64);
    assert_eq!(metrics.completed, total as u64);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.latency.count, metrics.completed);
    assert!(
        metrics.swaps >= 1,
        "the runtime must have picked up at least one swap"
    );
    assert!(engine.swap_count() >= metrics.swaps);
    assert_eq!(metrics.index_scope, scope);
    if scope != IndexScope::Global {
        // The current topology's shards planned locally on their epoch.
        assert!(
            metrics.local_index_builds() > 0,
            "per-shard scopes rebuild local indexes per epoch"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn swaps_that_change_num_users_recut_the_shards() {
    let big = model(90, 40, 1);
    let small = model(33, 40, 2);
    let engine = bmm_engine(&big);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(6)
        .workers(2)
        .build()
        .unwrap();

    let before = server.execute(&QueryRequest::top_k(3)).unwrap();
    assert_eq!(before.results.len(), 90);
    let bounds = server.shard_bounds();
    assert_eq!(bounds.last().unwrap().end, 90);
    assert_eq!(server.metrics().epoch, 0);

    engine.swap_model(Arc::clone(&small)).unwrap();
    let after = server.execute(&QueryRequest::top_k(3)).unwrap();
    assert_eq!(after.results.len(), 33, "the new epoch has 33 users");
    assert_eq!(after.epoch, 1);
    let bounds = server.shard_bounds();
    assert_eq!(
        bounds.last().unwrap().end,
        33,
        "shards re-chunked: {bounds:?}"
    );
    let metrics = server.metrics();
    assert_eq!(metrics.epoch, 1);
    assert_eq!(metrics.swaps, 1);
    // Identity against a fresh sequential engine on the new model.
    assert_eq!(
        after.results,
        bmm_engine(&small)
            .execute(&QueryRequest::top_k(3))
            .unwrap()
            .results
    );

    // Same-bounds swaps carry per-shard counters forward; the re-shard
    // above reset them, so only post-swap traffic shows.
    let submitted: u64 = metrics.shards.iter().map(|s| s.submitted).sum();
    let completed: u64 = metrics.shards.iter().map(|s| s.completed).sum();
    assert_eq!(submitted, completed, "no phantom in-flight work");
    server.shutdown().unwrap();
}

#[test]
fn old_epochs_become_unreachable_after_the_last_in_flight_request() {
    let old_model = model(40, 30, 3);
    let weak_old = Arc::downgrade(&old_model);
    let engine = bmm_engine(&old_model);
    drop(old_model); // the engine's epoch now holds the only strong refs

    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(3)
        .workers(2)
        .build()
        .unwrap();
    // Serve on epoch 0: builds the solver, the plan, and the topology that
    // all pin the old model.
    server.execute(&QueryRequest::top_k(4)).unwrap();
    assert!(
        weak_old.upgrade().is_some(),
        "epoch 0 is live while current"
    );

    engine.swap_model(model(52, 30, 4)).unwrap();
    // The next admission moves the topology to epoch 1; with it gone and
    // no in-flight epoch-0 work, every derived structure of epoch 0
    // (model, BMM solver, prepared plan, shard engines) must drop. Poll
    // briefly: the last worker may still be releasing its locals.
    server.execute(&QueryRequest::top_k(4)).unwrap();
    let mut reclaimed = false;
    for _ in 0..200 {
        if weak_old.upgrade().is_none() {
            reclaimed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        reclaimed,
        "old epoch still reachable after swap + drained traffic"
    );
    // The server keeps serving the new epoch.
    let response = server.execute(&QueryRequest::top_k(2)).unwrap();
    assert_eq!(response.results.len(), 52);
    assert_eq!(response.epoch, 1);
    server.shutdown().unwrap();
}

#[test]
fn direct_engine_traffic_and_server_traffic_agree_across_swaps() {
    // The server fronts the engine; both paths must see the same epoch
    // stream and identical results on it.
    let a = model(48, 36, 5);
    let b = model(48, 36, 6);
    let engine = bmm_engine(&a);
    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4)
        .workers(2)
        .build()
        .unwrap();
    let request = QueryRequest::top_k(5);
    let direct = engine.execute(&request).unwrap();
    let served = server.execute(&request).unwrap();
    assert_eq!(direct.results, served.results);
    assert_eq!(direct.epoch, served.epoch);

    engine.swap_model(Arc::clone(&b)).unwrap();
    let direct = engine.execute(&request).unwrap();
    let served = server.execute(&request).unwrap();
    assert_eq!(direct.results, served.results);
    assert_eq!(direct.epoch, 1);
    assert_eq!(served.epoch, 1);
    server.shutdown().unwrap();
}
