//! Property tests for the clustering substrate.

use mips_clustering::{
    assign_to_nearest, kmeans, max_angles_per_cluster, spherical_kmeans, KMeansConfig,
};
use mips_linalg::kernels::{angle, dist2_sq};
use mips_linalg::Matrix;
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Matrix<f64>> {
    (1usize..40, 1usize..6, 0u64..1000).prop_map(|(n, f, seed)| {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(n, f, move |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold for any input and both algorithms.
    #[test]
    fn clustering_invariants(points in points_strategy(), k in 1usize..8, iters in 1usize..5) {
        let cfg = KMeansConfig { k, max_iters: iters, seed: 1 };
        for result in [kmeans(&points, &cfg), spherical_kmeans(&points, &cfg)] {
            result.check_invariants(points.rows());
            prop_assert!(result.inertia >= 0.0);
            prop_assert!(result.iterations >= 1 && result.iterations <= iters);
            prop_assert!(result.k() <= k);
        }
    }

    /// After the final assignment step, every point sits with its nearest
    /// centroid (Euclidean k-means).
    #[test]
    fn final_assignment_is_nearest(points in points_strategy(), k in 1usize..6) {
        let result = kmeans(&points, &KMeansConfig { k, max_iters: 3, seed: 2 });
        for (p, &c) in result.assignments.iter().enumerate() {
            let own = dist2_sq(points.row(p), result.centroids.row(c as usize));
            for other in 0..result.k() {
                let d = dist2_sq(points.row(p), result.centroids.row(other));
                prop_assert!(own <= d + 1e-9, "point {p}: cluster {c} at {own}, {other} at {d}");
            }
        }
        // assign_to_nearest must agree with the clustering's own assignment.
        prop_assert_eq!(assign_to_nearest(&points, &result.centroids), result.assignments);
    }

    /// θ_b dominates every member's angle (the MAXIMUS exactness premise),
    /// for both clusterings.
    #[test]
    fn theta_b_dominates_members(points in points_strategy(), k in 1usize..6) {
        let cfg = KMeansConfig { k, max_iters: 3, seed: 3 };
        for result in [kmeans(&points, &cfg), spherical_kmeans(&points, &cfg)] {
            let thetas = max_angles_per_cluster(&points, &result);
            for (p, &c) in result.assignments.iter().enumerate() {
                let row = points.row(p);
                if row.iter().all(|&v| v == 0.0) {
                    continue; // zero vectors are excluded from θ_b by design
                }
                let a = angle(row, result.centroids.row(c as usize));
                prop_assert!(a <= thetas[c as usize] + 1e-9);
            }
        }
    }
}
