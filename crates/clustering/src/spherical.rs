//! Spherical k-means: the clustering Koenigstein et al. \[18\] used.
//!
//! Identical to Lloyd's algorithm except that (a) the objective is cosine
//! dissimilarity and (b) centroids are projected back onto the unit sphere
//! after every update. Minimizing angular distance directly yields tighter
//! θ_b bounds than Euclidean k-means, but the paper measured the gap at only
//! ~7 % while Euclidean k-means ran 2–3× faster — hence MAXIMUS ships with
//! [`crate::kmeans`](mod@crate::kmeans) and this variant exists for the lesion study.

use crate::kmeans::{Clustering, KMeansConfig};
use mips_linalg::kernels::{dist2_sq, dot, norm2, normalize};
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs spherical k-means over the rows of `points`.
///
/// Zero-norm points are assigned to cluster 0 by convention (their angle to
/// every centroid is undefined). Deterministic for a fixed seed.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn spherical_kmeans(points: &Matrix<f64>, config: &KMeansConfig) -> Clustering {
    assert!(points.rows() > 0, "spherical_kmeans: no points");
    assert!(config.k > 0, "spherical_kmeans: k must be positive");
    let n = points.rows();
    let f = points.cols();
    let k = config.k.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Work on unit-normalized copies; direction is all that matters.
    let mut unit = points.clone();
    for r in 0..n {
        normalize(unit.row_mut(r));
    }

    let mut centroids = seed_distinct_directions(&unit, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut prev_objective = f64::NEG_INFINITY;
    let mut iterations = 0;

    for iter in 0..config.max_iters.max(1) {
        iterations = iter + 1;
        let new_objective = assign_by_cosine(&unit, &centroids, &mut assignments);

        // Update: mean direction, re-projected to the sphere.
        let mut sums = Matrix::<f64>::zeros(k, f);
        let mut counts = vec![0usize; k];
        for (p, &c) in assignments.iter().enumerate() {
            counts[c as usize] += 1;
            for (a, &v) in sums.row_mut(c as usize).iter_mut().zip(unit.row(p)) {
                *a += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 || norm2(sums.row(c)) == 0.0 {
                // Re-seed degenerate clusters with a random point direction.
                let p = rng.gen_range(0..n);
                sums.row_mut(c).copy_from_slice(unit.row(p));
            }
            normalize(sums.row_mut(c));
        }
        centroids = sums;

        if (new_objective - prev_objective).abs() <= 1e-12 * (1.0 + prev_objective.abs()) {
            break;
        }
        prev_objective = new_objective;
    }

    let _ = assign_by_cosine(&unit, &centroids, &mut assignments);
    let mut members = vec![Vec::new(); k];
    for (p, &c) in assignments.iter().enumerate() {
        members[c as usize].push(p as u32);
    }
    // Report inertia in the Euclidean sense on the unit sphere so the two
    // variants are comparable: ‖x̂−c‖² = 2(1−cos θ).
    let inertia: f64 = (0..n)
        .map(|p| dist2_sq(unit.row(p), centroids.row(assignments[p] as usize)))
        .sum();

    Clustering {
        centroids,
        assignments,
        members,
        inertia,
        iterations,
    }
}

/// Assigns points to the centroid with maximal cosine; returns the summed
/// cosine objective. Points are unit-normalized, so dot = cosine.
fn assign_by_cosine(unit: &Matrix<f64>, centroids: &Matrix<f64>, out: &mut [u32]) -> f64 {
    let mut total = 0.0;
    for (p, row) in unit.iter_rows().enumerate() {
        let mut best = 0u32;
        let mut best_cos = f64::NEG_INFINITY;
        for (c, crow) in centroids.iter_rows().enumerate() {
            let cos = dot(row, crow);
            if cos > best_cos {
                best_cos = cos;
                best = c as u32;
            }
        }
        out[p] = best;
        total += best_cos;
    }
    total
}

/// Picks `k` seed directions, greedily preferring points far (in angle) from
/// already chosen seeds — the spherical analogue of k-means++.
fn seed_distinct_directions(unit: &Matrix<f64>, k: usize, rng: &mut StdRng) -> Matrix<f64> {
    let n = unit.rows();
    let f = unit.cols();
    let mut centroids = Matrix::<f64>::zeros(k, f);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(unit.row(first));
    let mut worst_cos: Vec<f64> = unit.iter_rows().map(|r| dot(r, centroids.row(0))).collect();
    for c in 1..k {
        // Choose the point with the smallest max-cosine to current seeds.
        let (idx, _) = worst_cos
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty points");
        centroids.row_mut(c).copy_from_slice(unit.row(idx));
        for (i, w) in worst_cos.iter_mut().enumerate() {
            let cos = dot(unit.row(i), centroids.row(c));
            if cos > *w {
                *w = cos;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::kernels::angle;

    /// Two bundles of directions, ~90° apart, with varying magnitudes.
    fn direction_bundles() -> Matrix<f64> {
        let mut rows = Vec::new();
        for i in 0..15 {
            let scale = 1.0 + (i % 4) as f64; // magnitude must not matter
            let eps = (i as f64) * 0.002;
            rows.push(vec![scale * 1.0, scale * eps]);
            rows.push(vec![scale * eps, scale * 1.0]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_directions_ignoring_magnitude() {
        let points = direction_bundles();
        let result = spherical_kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                max_iters: 8,
                seed: 11,
            },
        );
        result.check_invariants(points.rows());
        // Even-index rows point along e1, odd along e2: they must split.
        let a = result.assignments[0];
        for i in (0..30).step_by(2) {
            assert_eq!(result.assignments[i], a);
        }
        for i in (1..30).step_by(2) {
            assert_ne!(result.assignments[i], a);
        }
    }

    #[test]
    fn centroids_are_unit_norm() {
        let points = direction_bundles();
        let result = spherical_kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                max_iters: 5,
                seed: 3,
            },
        );
        for c in 0..result.k() {
            assert!((norm2(result.centroids.row(c)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_angle_no_worse_than_kmeans_on_angular_data() {
        // The property the paper measures: spherical clustering produces
        // tighter (or equal) max user–centroid angles than Euclidean k-means
        // on direction-structured data.
        let points = direction_bundles();
        let cfg = KMeansConfig {
            k: 2,
            max_iters: 10,
            seed: 5,
        };
        let sph = spherical_kmeans(&points, &cfg);
        let euc = crate::kmeans::kmeans(&points, &cfg);
        let max_angle = |cl: &Clustering| -> f64 {
            let mut worst: f64 = 0.0;
            for (p, &c) in cl.assignments.iter().enumerate() {
                worst = worst.max(angle(points.row(p), cl.centroids.row(c as usize)));
            }
            worst
        };
        assert!(max_angle(&sph) <= max_angle(&euc) + 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = direction_bundles();
        let cfg = KMeansConfig {
            k: 2,
            max_iters: 4,
            seed: 99,
        };
        assert_eq!(
            spherical_kmeans(&points, &cfg).assignments,
            spherical_kmeans(&points, &cfg).assignments
        );
    }

    #[test]
    fn handles_single_point() {
        let points = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let result = spherical_kmeans(
            &points,
            &KMeansConfig {
                k: 4,
                max_iters: 2,
                seed: 0,
            },
        );
        assert_eq!(result.k(), 1);
        assert!((result.centroids.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((result.centroids.get(0, 1) - 0.8).abs() < 1e-12);
    }
}
