//! Per-cluster maximum user–centroid angles: the θ_b of Equation 3.
//!
//! MAXIMUS's pruning bound replaces each user's angle to its centroid with
//! the *largest* such angle in the cluster, `θ_b = max_{u ∈ C} θ_uc`
//! (Algorithm 1, `ConstructIndex`). A coarser θ_b weakens pruning but keeps
//! one sorted item list per cluster instead of one per user.

use crate::kmeans::Clustering;
use mips_linalg::kernels::angle;
use mips_linalg::Matrix;

/// Computes `θ_b` for every cluster: the maximum angle between a member
/// vector and the cluster centroid.
///
/// Empty clusters get `θ_b = 0` (no user ever walks their list).
/// Zero-norm users contribute angle 0 ([`angle`] returns `acos(0) = π/2`
/// for zero vectors via the cosine convention — we explicitly skip them so a
/// degenerate user cannot blow up the whole cluster's bound; such users match
/// every item equally and are handled by the query path directly).
///
/// # Panics
/// Panics if dimensions disagree.
pub fn max_angles_per_cluster(points: &Matrix<f64>, clustering: &Clustering) -> Vec<f64> {
    assert_eq!(
        points.cols(),
        clustering.centroids.cols(),
        "max_angles_per_cluster: dimension mismatch"
    );
    let mut out = vec![0.0f64; clustering.k()];
    for (c, members) in clustering.members.iter().enumerate() {
        let centroid = clustering.centroids.row(c);
        let mut worst: f64 = 0.0;
        for &p in members {
            let row = points.row(p as usize);
            if row.iter().all(|&v| v == 0.0) {
                continue;
            }
            worst = worst.max(angle(row, centroid));
        }
        out[c] = worst;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    #[test]
    fn theta_b_bounds_every_member_angle() {
        let mut rows = Vec::new();
        for i in 0..40 {
            let t = i as f64 * 0.05;
            rows.push(vec![t.cos(), t.sin(), 0.3 * t]);
        }
        let points = Matrix::from_rows(&rows).unwrap();
        let cl = kmeans(
            &points,
            &KMeansConfig {
                k: 4,
                max_iters: 6,
                seed: 8,
            },
        );
        let thetas = max_angles_per_cluster(&points, &cl);
        for (p, &c) in cl.assignments.iter().enumerate() {
            let a = angle(points.row(p), cl.centroids.row(c as usize));
            assert!(
                a <= thetas[c as usize] + 1e-12,
                "user {p} angle {a} exceeds θ_b {}",
                thetas[c as usize]
            );
        }
    }

    #[test]
    fn tight_cluster_has_small_theta() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, 1e-4 * i as f64]).collect();
        let points = Matrix::from_rows(&rows).unwrap();
        let cl = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                max_iters: 2,
                seed: 0,
            },
        );
        let thetas = max_angles_per_cluster(&points, &cl);
        assert!(thetas[0] < 1e-3);
    }

    #[test]
    fn zero_vectors_do_not_inflate_theta() {
        let points = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.001],
            vec![0.0, 0.0], // degenerate user
        ])
        .unwrap();
        let cl = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                max_iters: 2,
                seed: 0,
            },
        );
        let thetas = max_angles_per_cluster(&points, &cl);
        assert!(thetas[0] < 0.1, "zero vector inflated θ_b: {}", thetas[0]);
    }

    #[test]
    fn spread_directions_have_large_theta() {
        let points = Matrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0]]).unwrap();
        let cl = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                max_iters: 1,
                seed: 0,
            },
        );
        // Centroid is ~origin; angles are ill-conditioned but must stay finite
        // and within [0, π].
        let thetas = max_angles_per_cluster(&points, &cl);
        assert!(thetas[0] >= 0.0 && thetas[0] <= std::f64::consts::PI);
    }
}
