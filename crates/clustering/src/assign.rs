//! Assignment-only clustering for dynamic user sets (§III-E).
//!
//! For applications where users churn, the paper forgoes re-clustering:
//! new users are simply assigned to the existing centroid at smallest L2
//! distance (the assignment half of a k-means step). The paper found that
//! clustering a 10 % sample and assigning the rest changed end-to-end
//! runtime by under 1 %.

use mips_linalg::kernels::{dot, norm2_sq};
use mips_linalg::Matrix;

/// Assigns each row of `points` to the nearest centroid (L2), returning the
/// cluster ids. Ties break toward the lower cluster id.
///
/// # Panics
/// Panics if dimensions disagree or `centroids` is empty.
pub fn assign_to_nearest(points: &Matrix<f64>, centroids: &Matrix<f64>) -> Vec<u32> {
    assert!(centroids.rows() > 0, "assign_to_nearest: no centroids");
    assert_eq!(
        points.cols(),
        centroids.cols(),
        "assign_to_nearest: dimension mismatch"
    );
    let centroid_sq: Vec<f64> = centroids.iter_rows().map(norm2_sq).collect();
    points
        .iter_rows()
        .map(|row| {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, crow) in centroids.iter_rows().enumerate() {
                let d = centroid_sq[c] - 2.0 * dot(row, crow);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_to_closest_centroid() {
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let points = Matrix::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.5], vec![4.9, 4.9]]).unwrap();
        assert_eq!(assign_to_nearest(&points, &centroids), vec![0, 1, 0]);
    }

    #[test]
    fn equidistant_point_prefers_lower_id() {
        let centroids = Matrix::from_rows(&[vec![-1.0], vec![1.0]]).unwrap();
        let points = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert_eq!(assign_to_nearest(&points, &centroids), vec![0]);
    }

    #[test]
    fn agrees_with_full_kmeans_assignment() {
        use crate::kmeans::{kmeans, KMeansConfig};
        let mut rows = Vec::new();
        for c in [0.0, 8.0, 16.0] {
            for i in 0..10 {
                rows.push(vec![c + 0.01 * i as f64, c]);
            }
        }
        let points = Matrix::from_rows(&rows).unwrap();
        let cl = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                max_iters: 8,
                seed: 2,
            },
        );
        let reassigned = assign_to_nearest(&points, &cl.centroids);
        assert_eq!(reassigned, cl.assignments);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_dimension_mismatch() {
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let points = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let _ = assign_to_nearest(&points, &centroids);
    }
}
