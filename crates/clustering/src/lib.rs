//! User clustering for the MAXIMUS index.
//!
//! §III-A of the paper: MAXIMUS groups users into a handful of clusters whose
//! centroids approximate the users' preferences, then bounds the error of the
//! approximation by the largest user–centroid *angle* in each cluster.
//! The paper's finding — reproduced by `bench/micro_kmeans` — is that plain
//! Euclidean k-means gets within ~7 % of spherical clustering's max angles
//! while running 2–3× faster, so MAXIMUS uses k-means.
//!
//! Provided here:
//! * [`kmeans`](mod@kmeans) — Lloyd's algorithm with k-means++ seeding and empty-cluster
//!   repair,
//! * [`spherical`] — spherical k-means (unit-norm centroids, cosine
//!   objective), kept for the lesion comparison,
//! * [`assign`] — assignment-only mode for dynamic user sets (§III-E),
//! * [`angles`] — per-cluster maximum-angle computation (the θ_b of Eqn. 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod assign;
pub mod kmeans;
pub mod spherical;

pub use angles::max_angles_per_cluster;
pub use assign::assign_to_nearest;
pub use kmeans::{kmeans, Clustering, KMeansConfig};
pub use spherical::spherical_kmeans;
