//! Lloyd's k-means with k-means++ seeding.
//!
//! MAXIMUS only needs a *few* clusters over a *few* iterations (the paper's
//! defaults are `|C| = 8`, `i = 3`), so this implementation favours
//! simplicity and deterministic behaviour over asymptotic cleverness; the
//! distance evaluations dominate and use the fused `‖x−c‖² = ‖x‖² − 2x·c +
//! ‖c‖²` form with contiguous row access.

use mips_linalg::kernels::{dist2_sq, dot, norm2_sq};
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters (clamped to the number of points).
    pub k: usize,
    /// Maximum Lloyd iterations (the paper finds 3 suffices for MAXIMUS).
    pub max_iters: usize,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 3,
            seed: 0x5EED,
        }
    }
}

/// The result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster centroids, one per row (`k × f`).
    pub centroids: Matrix<f64>,
    /// Cluster id of every input point.
    pub assignments: Vec<u32>,
    /// Point indices grouped by cluster (`members[c]` lists the rows of the
    /// input assigned to cluster `c`).
    pub members: Vec<Vec<u32>>,
    /// Sum of squared distances to assigned centroids after the final
    /// iteration.
    pub inertia: f64,
    /// Iterations actually executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Validates internal consistency (used by tests and debug assertions).
    pub fn check_invariants(&self, n_points: usize) {
        assert_eq!(self.assignments.len(), n_points);
        assert_eq!(self.members.len(), self.k());
        let total: usize = self.members.iter().map(Vec::len).sum();
        assert_eq!(total, n_points, "members must partition the points");
        for (c, members) in self.members.iter().enumerate() {
            for &p in members {
                assert_eq!(self.assignments[p as usize] as usize, c);
            }
        }
    }
}

/// Runs Lloyd's k-means over the rows of `points`.
///
/// Deterministic for a fixed seed. `k` is clamped to the number of points;
/// clusters left empty by an update step are re-seeded with the point
/// furthest from its centroid (standard empty-cluster repair).
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans(points: &Matrix<f64>, config: &KMeansConfig) -> Clustering {
    assert!(points.rows() > 0, "kmeans: no points");
    assert!(config.k > 0, "kmeans: k must be positive");
    let n = points.rows();
    let f = points.cols();
    let k = config.k.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut centroids = plus_plus_seed(points, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut prev_inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..config.max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let new_inertia = assign_points(points, &centroids, &mut assignments);

        // Update step.
        let mut sums = Matrix::<f64>::zeros(k, f);
        let mut counts = vec![0usize; k];
        for (p, &c) in assignments.iter().enumerate() {
            counts[c as usize] += 1;
            let row = points.row(p);
            let acc = sums.row_mut(c as usize);
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        for (c, count) in counts.iter_mut().enumerate() {
            if *count == 0 {
                // Re-seed an empty cluster with the point worst served by its
                // current centroid.
                let far = furthest_point(points, &centroids, &assignments);
                sums.row_mut(c).copy_from_slice(points.row(far));
                *count = 1;
            }
            let inv = 1.0 / *count as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
        centroids = sums;

        // Converged when the assignment objective stops improving.
        if (prev_inertia - new_inertia).abs() <= 1e-12 * (1.0 + prev_inertia.abs()) {
            break;
        }
        prev_inertia = new_inertia;
    }

    // Final assignment against the final centroids so `members` matches.
    let inertia = assign_points(points, &centroids, &mut assignments);
    let mut members = vec![Vec::new(); k];
    for (p, &c) in assignments.iter().enumerate() {
        members[c as usize].push(p as u32);
    }

    Clustering {
        centroids,
        assignments,
        members,
        inertia,
        iterations,
    }
}

/// Assigns every point to its nearest centroid; returns the total squared
/// distance. Ties break toward the lower cluster id (determinism).
fn assign_points(points: &Matrix<f64>, centroids: &Matrix<f64>, out: &mut [u32]) -> f64 {
    let centroid_sq: Vec<f64> = centroids.iter_rows().map(norm2_sq).collect();
    let mut total = 0.0;
    for (p, row) in points.iter_rows().enumerate() {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (c, crow) in centroids.iter_rows().enumerate() {
            // ‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²; ‖x‖² is constant per point, so
            // comparing −2x·c + ‖c‖² is enough and saves a pass.
            let d = centroid_sq[c] - 2.0 * dot(row, crow);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        out[p] = best;
        total += dist2_sq(row, centroids.row(best as usize));
    }
    total
}

/// k-means++ seeding: D²-weighted sampling of initial centroids.
fn plus_plus_seed(points: &Matrix<f64>, k: usize, rng: &mut StdRng) -> Matrix<f64> {
    let n = points.rows();
    let f = points.cols();
    let mut centroids = Matrix::<f64>::zeros(k, f);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));

    let mut dist_sq: Vec<f64> = points
        .iter_rows()
        .map(|row| dist2_sq(row, centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; any index works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for (i, d) in dist_sq.iter_mut().enumerate() {
            let nd = dist2_sq(points.row(i), centroids.row(c));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// The point with the largest distance to its assigned centroid.
fn furthest_point(points: &Matrix<f64>, centroids: &Matrix<f64>, assignments: &[u32]) -> usize {
    let mut best = 0;
    let mut best_d = -1.0;
    for (p, row) in points.iter_rows().enumerate() {
        let d = dist2_sq(row, centroids.row(assignments[p] as usize));
        if d > best_d {
            best_d = d;
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs on a line.
    fn blobs() -> Matrix<f64> {
        let mut rows = Vec::new();
        for center in [0.0, 10.0, 20.0] {
            for i in 0..20 {
                let jitter = (i as f64 % 5.0) * 0.01;
                rows.push(vec![center + jitter, center - jitter]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separable_blobs_are_recovered() {
        let points = blobs();
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                max_iters: 10,
                seed: 7,
            },
        );
        result.check_invariants(points.rows());
        // Every blob lands in a single cluster.
        for blob in 0..3 {
            let first = result.assignments[blob * 20];
            for i in 0..20 {
                assert_eq!(result.assignments[blob * 20 + i], first, "blob {blob}");
            }
        }
        // Inertia is tiny relative to blob separation.
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let points = blobs();
        let cfg = KMeansConfig {
            k: 3,
            max_iters: 5,
            seed: 42,
        };
        let a = kmeans(&points, &cfg);
        let b = kmeans(&points, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let points = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 10,
                max_iters: 3,
                seed: 1,
            },
        );
        assert_eq!(result.k(), 2);
        result.check_invariants(2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                max_iters: 2,
                seed: 0,
            },
        );
        assert!((result.centroids.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((result.centroids.get(0, 1) - 4.0).abs() < 1e-12);
        assert_eq!(result.members[0].len(), 3);
    }

    #[test]
    fn identical_points_yield_zero_inertia() {
        let points = Matrix::from_rows(&vec![vec![2.0, 2.0]; 8]).unwrap();
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                max_iters: 4,
                seed: 9,
            },
        );
        assert!(result.inertia < 1e-20);
        result.check_invariants(8);
    }

    #[test]
    fn more_iterations_never_hurt_inertia() {
        let points = blobs();
        let short = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                max_iters: 1,
                seed: 3,
            },
        );
        let long = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                max_iters: 12,
                seed: 3,
            },
        );
        assert!(long.inertia <= short.inertia + 1e-9);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn rejects_empty_input() {
        let points = Matrix::<f64>::zeros(0, 3);
        let _ = kmeans(&points, &KMeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let points = Matrix::<f64>::zeros(2, 2);
        let _ = kmeans(
            &points,
            &KMeansConfig {
                k: 0,
                max_iters: 1,
                seed: 0,
            },
        );
    }
}
