//! Property-based tests for the linear algebra substrate.

use mips_linalg::{dot, gemm_nt, naive_gemm_nt, norm2, Matrix};
use proptest::prelude::*;

fn matrix_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        (
            Just(r),
            Just(c),
            proptest::collection::vec(-100.0f64..100.0, r * c),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The blocked GEMM agrees with the naive double loop on random shapes.
    #[test]
    fn gemm_equals_naive((m, k, adata) in matrix_strategy(24, 40),
                         n in 1usize..24,
                         seed in 0u64..1000) {
        let a = Matrix::from_vec(m, k, adata).unwrap();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Matrix::from_fn(n, k, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0
        });
        let fast = gemm_nt(&a, &b);
        let slow = naive_gemm_nt(&a, &b);
        for r in 0..m {
            for c in 0..n {
                let (x, y) = (fast.get(r, c), slow.get(r, c));
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                             "({r},{c}): {x} vs {y}");
            }
        }
    }

    /// Cauchy–Schwarz: |x·y| ≤ ‖x‖‖y‖ — the inequality every pruning bound
    /// in the repo ultimately relies on.
    #[test]
    fn dot_respects_cauchy_schwarz(x in proptest::collection::vec(-50.0f64..50.0, 1..64),
                                   y in proptest::collection::vec(-50.0f64..50.0, 1..64)) {
        let len = x.len().min(y.len());
        let (x, y) = (&x[..len], &y[..len]);
        let lhs = dot(x, y).abs();
        let rhs = norm2(x) * norm2(y);
        prop_assert!(lhs <= rhs + 1e-7 * (1.0 + rhs));
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution((r, c, data) in matrix_strategy(20, 20)) {
        let m = Matrix::from_vec(r, c, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// GEMM is linear in A: (A1 + A2)·Bᵀ = A1·Bᵀ + A2·Bᵀ.
    #[test]
    fn gemm_linear_in_a((m, k, a1) in matrix_strategy(12, 16),
                        seed in 0u64..1000) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a1 = Matrix::from_vec(m, k, a1).unwrap();
        let a2 = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(10, k, |_, _| next());
        let sum = Matrix::from_fn(m, k, |r, c| a1.get(r, c) + a2.get(r, c));
        let lhs = gemm_nt(&sum, &b);
        let c1 = gemm_nt(&a1, &b);
        let c2 = gemm_nt(&a2, &b);
        for r in 0..m {
            for c in 0..10 {
                let x = lhs.get(r, c);
                let y = c1.get(r, c) + c2.get(r, c);
                prop_assert!((x - y).abs() <= 1e-7 * (1.0 + x.abs().max(y.abs())));
            }
        }
    }
}
