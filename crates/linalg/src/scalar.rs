//! The [`Scalar`] abstraction over `f32` and `f64`.
//!
//! BLAS ships single- and double-precision variants of every routine
//! (`sgemm`/`dgemm`, `sdot`/`ddot`); this trait lets every kernel in the crate
//! be written once and monomorphized for both widths. The paper's reference
//! implementations use double precision throughout, so the higher-level solver
//! crates fix `f64`, but the kernels are tested at both widths.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point element type usable by every kernel in this crate.
///
/// Implemented for `f32` and `f64` only. The trait is deliberately small:
/// just the constants and intrinsics the kernels need, so that adding a new
/// width (e.g. a software `f16`) stays tractable.
pub trait Scalar:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this width.
    const EPSILON: Self;
    /// Size of one element in bytes (used for cache-occupancy math).
    const BYTES: usize;

    /// Lossy conversion from `f64` (used for constants and test tolerances).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a `usize` count.
    fn from_usize(v: usize) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    ///
    /// Maps to the hardware FMA when the target supports it; the GEMM
    /// micro-kernel leans on this for both throughput and accuracy.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// IEEE maximum (propagating the larger value, NaN-ignoring like `f64::max`).
    fn max_val(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min_val(self, other: Self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Inverse cosine, clamped to the valid domain before evaluation.
    ///
    /// Dot products of unit vectors can land a few ulps outside `[-1, 1]`;
    /// clamping keeps the angle math in the MAXIMUS bound well defined.
    fn acos_clamped(self) -> Self;
    /// IEEE 754 `totalOrder` comparison (`f64::total_cmp`): total and
    /// NaN-safe, so sorting comparators never panic mid-sort.
    fn total_cmp(&self, other: &Self) -> core::cmp::Ordering;
}

macro_rules! impl_scalar {
    ($t:ty, $bytes:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = $bytes;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max_val(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min_val(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn acos_clamped(self) -> Self {
                self.clamp(-1.0, 1.0).acos()
            }
            #[inline(always)]
            fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                <$t>::total_cmp(self, other)
            }
        }
    };
}

impl_scalar!(f32, 4);
impl_scalar!(f64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_ieee() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn acos_clamped_tolerates_out_of_domain() {
        // 1 + 2eps is the classic "cosine of identical unit vectors" failure.
        let just_over = 1.0_f64 + 4.0 * f64::EPSILON;
        assert_eq!(just_over.acos_clamped(), 0.0);
        let just_under = -1.0_f64 - 4.0 * f64::EPSILON;
        assert!((just_under.acos_clamped() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_separate_ops_closely() {
        let a = 1.25_f64;
        let b = 3.5_f64;
        let c = -0.75_f64;
        assert!((a.mul_add(b, c) - (a * b + c)).abs() < 1e-12);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_usize(7), 7.0);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn finite_detection() {
        assert!(1.0_f64.is_finite());
        assert!(!f64::NAN.is_finite());
        assert!(!f64::INFINITY.is_finite());
        assert!(!f32::NEG_INFINITY.is_finite());
    }
}
