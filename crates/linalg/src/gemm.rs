//! Blocked matrix multiply: the "BMM" in the paper.
//!
//! Computes `C = A·Bᵀ` for row-major `A (m×k)` and `B (n×k)` — exactly the
//! MIPS rating computation `R = U·Iᵀ` — using the Goto/BLIS decomposition:
//!
//! 1. the **NC loop** slices B into panels that stay resident in L3,
//! 2. the **KC loop** slices the shared dimension so packed panels fit caches,
//! 3. the **MC loop** packs a block of A into L2,
//! 4. the **macro-kernel** walks `MR × NR` register tiles,
//! 5. the **micro-kernel** runs `KC` fused multiply-adds per tile element
//!    with all `MR × NR` accumulators held in registers.
//!
//! Packing rewrites both operands into tile-interleaved layout so the
//! micro-kernel reads purely sequential memory. This is the "advanced data
//! layout and blocking to maximize cache utilization" (§II-B) that gives
//! brute force its constant-factor edge over index traversal.
//!
//! [`naive_gemm_nt`] is the same computation as a double loop of `dot` calls
//! — the paper's "naïve inner products" strawman — kept for correctness
//! testing and for the §II-B speedup measurement in `bench/micro_gemm`.

use crate::blocking::{BlockSizes, CacheConfig, MR, NR};
use crate::kernels::dot;
use crate::matrix::{Matrix, RowBlock};
use crate::scalar::Scalar;
use crate::simd::{self, Kernel};
use std::ops::Range;

/// Number of floating-point operations in one `m × n × k` multiply.
///
/// Used by OPTIMUS's analytical (offline) BMM cost model, §IV-A.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// `C = A·Bᵀ` into a freshly allocated matrix.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn gemm_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm_nt_into(a.into(), b.into(), c.as_mut_slice());
    c
}

/// `C = A·Bᵀ` into a caller-provided row-major buffer of length `m·n`.
///
/// Both operands are zero-copy row views, which lets the BMM solver stream
/// user batches and lets MAXIMUS multiply per-cluster user blocks without
/// copying. `c` is fully overwritten.
///
/// # Panics
/// Panics if the operand widths differ or `c` has the wrong length.
pub fn gemm_nt_into<T: Scalar>(a: RowBlock<'_, T>, b: RowBlock<'_, T>, c: &mut [T]) {
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    assert_eq!(k, b.cols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: output buffer length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(T::ZERO);
        return;
    }
    let blocks = BlockSizes::for_scalar::<T>(&CacheConfig::default());
    gemm_nt_blocked(a, b, c, &blocks);
}

/// `C = A·Bᵀ` with explicit blocking parameters (exposed for the blocking
/// ablation bench; [`gemm_nt_into`] picks parameters from the default cache
/// geometry).
pub fn gemm_nt_blocked<T: Scalar>(
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    c: &mut [T],
    blocks: &BlockSizes,
) {
    gemm_nt_blocked_with(simd::active(), a, b, c, blocks)
}

/// [`gemm_nt_blocked`] with an explicit micro-kernel set (exposed so tests
/// and benches can force the scalar fallback regardless of `MIPS_KERNEL`).
pub fn gemm_nt_blocked_with<T: Scalar>(
    kern: &Kernel,
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    c: &mut [T],
    blocks: &BlockSizes,
) {
    // Per-call packing buffers; hot loops should prefer
    // [`gemm_nt_into_scratch`] to reuse them across calls.
    let mut pack_a: Vec<T> = Vec::new();
    let mut pack_b: Vec<T> = Vec::new();
    gemm_nt_packed(kern, a, b, c, blocks, &mut pack_a, &mut pack_b)
}

/// `C = A·Bᵀ` into a caller-provided buffer, reusing the pack panels in
/// `scratch` across calls (default blocking and the active kernel set).
///
/// This is the unfused serve path's entry: repeated batches pay zero
/// allocation once the scratch reaches its high-water mark.
///
/// # Panics
/// Panics if the operand widths differ or `c` has the wrong length.
pub fn gemm_nt_into_scratch<T: Scalar>(
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    c: &mut [T],
    scratch: &mut GemmScratch<T>,
) {
    let blocks = BlockSizes::for_scalar::<T>(&CacheConfig::default());
    gemm_nt_packed(
        simd::active(),
        a,
        b,
        c,
        &blocks,
        &mut scratch.pack_a,
        &mut scratch.pack_b,
    )
}

/// The blocked driver over caller-owned packing buffers.
fn gemm_nt_packed<T: Scalar>(
    kern: &Kernel,
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    c: &mut [T],
    blocks: &BlockSizes,
    pack_a: &mut Vec<T>,
    pack_b: &mut Vec<T>,
) {
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    assert_eq!(k, b.cols(), "gemm_nt: inner dimension mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: output buffer length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(T::ZERO);
        return;
    }
    let (mc, kc, nc) = (blocks.mc.max(MR), blocks.kc.max(1), blocks.nc.max(NR));

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        compute_panel(kern, a, b, jc, ncb, mc, kc, c, n, jc, pack_a, pack_b);
    }
}

/// Reusable buffers for the blocked/streaming GEMM drivers: the two packed
/// operand panels plus the resident score panel of the streaming path.
///
/// Owning one of these per query loop (or per worker thread) removes every
/// per-block allocation from the serve path; the buffers grow to the
/// high-water mark of the shapes they see and are reused thereafter.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch<T> {
    pack_a: Vec<T>,
    pack_b: Vec<T>,
    panel: Vec<T>,
}

impl<T: Scalar> GemmScratch<T> {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        GemmScratch {
            pack_a: Vec::new(),
            pack_b: Vec::new(),
            panel: Vec::new(),
        }
    }
}

/// Panel-streaming `C = A·Bᵀ`: instead of materializing the full `m × n`
/// score buffer, walks B in NC-sized column panels and hands each finished
/// `m × ncb` panel of scores to `consumer` before computing the next one.
///
/// `consumer` receives the panel (row-major, row stride = the panel width)
/// and the global column range it covers. Only one panel of scores is ever
/// resident, so the fused GEMM→top-k path (`mips-topk::gemm_nt_topk`) does
/// its selection on cache-warm scores and the `batch × n` round-trip through
/// memory disappears — the §II-B memory-traffic argument applied to our own
/// serving loop.
///
/// # Panics
/// Panics if the operand widths differ.
pub fn gemm_nt_stream_panels<T: Scalar>(
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    scratch: &mut GemmScratch<T>,
    consumer: impl FnMut(&[T], Range<usize>),
) {
    let blocks = BlockSizes::for_scalar::<T>(&CacheConfig::default());
    gemm_nt_stream_panels_with(simd::active(), a, b, &blocks, scratch, consumer)
}

/// [`gemm_nt_stream_panels`] with explicit kernel set and blocking
/// parameters (the forced-scalar test entry).
pub fn gemm_nt_stream_panels_with<T: Scalar>(
    kern: &Kernel,
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    blocks: &BlockSizes,
    scratch: &mut GemmScratch<T>,
    mut consumer: impl FnMut(&[T], Range<usize>),
) {
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    assert_eq!(k, b.cols(), "gemm_nt: inner dimension mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let (mc, kc, nc) = (blocks.mc.max(MR), blocks.kc.max(1), blocks.nc.max(NR));

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        scratch.panel.resize(m * ncb, T::ZERO);
        if k == 0 {
            scratch.panel.fill(T::ZERO);
        } else {
            // Stale values from the previous panel are fully overwritten by
            // the first (non-accumulating) depth pass.
            compute_panel(
                kern,
                a,
                b,
                jc,
                ncb,
                mc,
                kc,
                &mut scratch.panel,
                ncb,
                0,
                &mut scratch.pack_a,
                &mut scratch.pack_b,
            );
        }
        consumer(&scratch.panel[..m * ncb], jc..jc + ncb);
    }
}

/// Computes one NC panel of `C = A·Bᵀ` (all depth and row blocks for columns
/// `jc..jc+ncb` of C), writing into `out` with row stride `out_stride` at
/// column offset `out_col0`. Shared by the in-place and streaming drivers.
#[allow(clippy::too_many_arguments)]
fn compute_panel<T: Scalar>(
    kern: &Kernel,
    a: RowBlock<'_, T>,
    b: RowBlock<'_, T>,
    jc: usize,
    ncb: usize,
    mc: usize,
    kc: usize,
    out: &mut [T],
    out_stride: usize,
    out_col0: usize,
    pack_a: &mut Vec<T>,
    pack_b: &mut Vec<T>,
) {
    let (m, k) = (a.rows(), a.cols());
    for pc in (0..k).step_by(kc) {
        let kcb = kc.min(k - pc);
        pack_panel_b(b, jc, ncb, pc, kcb, pack_b);
        let accumulate = pc > 0;
        for ic in (0..m).step_by(mc) {
            let mcb = mc.min(m - ic);
            pack_panel_a(a, ic, mcb, pc, kcb, pack_a);
            macro_kernel(
                kern, pack_a, pack_b, out, out_stride, ic, out_col0, mcb, ncb, kcb, accumulate,
            );
        }
    }
}

/// Packs `ncb` rows of B starting at `row0` (depth window `pc..pc+kcb`) into
/// NR-interleaved panels, zero-padding the final partial panel.
fn pack_panel_b<T: Scalar>(
    b: RowBlock<'_, T>,
    row0: usize,
    ncb: usize,
    pc: usize,
    kcb: usize,
    out: &mut Vec<T>,
) {
    let panels = ncb.div_ceil(NR);
    out.clear();
    out.resize(panels * kcb * NR, T::ZERO);
    for q in 0..panels {
        let base = q * kcb * NR;
        let width = NR.min(ncb - q * NR);
        for jj in 0..width {
            let src = &b.row(row0 + q * NR + jj)[pc..pc + kcb];
            for (p, &v) in src.iter().enumerate() {
                out[base + p * NR + jj] = v;
            }
        }
    }
}

/// Packs `mcb` rows of A starting at `row0` (depth window `pc..pc+kcb`) into
/// MR-interleaved panels, zero-padding the final partial panel.
fn pack_panel_a<T: Scalar>(
    a: RowBlock<'_, T>,
    row0: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    out: &mut Vec<T>,
) {
    let panels = mcb.div_ceil(MR);
    out.clear();
    out.resize(panels * kcb * MR, T::ZERO);
    for q in 0..panels {
        let base = q * kcb * MR;
        let height = MR.min(mcb - q * MR);
        for ii in 0..height {
            let src = &a.row(row0 + q * MR + ii)[pc..pc + kcb];
            for (p, &v) in src.iter().enumerate() {
                out[base + p * MR + ii] = v;
            }
        }
    }
}

/// Walks the `MR × NR` register tiles of one `mcb × ncb` block of C,
/// dispatching each tile to the selected micro-kernel (`f64`) or the
/// portable generic one (other scalar types).
#[allow(clippy::too_many_arguments)]
fn macro_kernel<T: Scalar>(
    kern: &Kernel,
    pack_a: &[T],
    pack_b: &[T],
    c: &mut [T],
    n: usize,
    ic: usize,
    jc: usize,
    mcb: usize,
    ncb: usize,
    kcb: usize,
    accumulate: bool,
) {
    let a_panels = mcb.div_ceil(MR);
    let b_panels = ncb.div_ceil(NR);
    for qa in 0..a_panels {
        let a_panel = &pack_a[qa * kcb * MR..(qa + 1) * kcb * MR];
        let tile_rows = MR.min(mcb - qa * MR);
        for qb in 0..b_panels {
            let b_panel = &pack_b[qb * kcb * NR..(qb + 1) * kcb * NR];
            let tile_cols = NR.min(ncb - qb * NR);
            let mut acc = [[T::ZERO; NR]; MR];
            match (
                simd::as_f64(a_panel),
                simd::as_f64(b_panel),
                simd::acc_as_f64_mut(&mut acc),
            ) {
                (Some(ap), Some(bp), Some(af)) => kern.micro_4x8(ap, bp, af),
                _ => match (
                    simd::as_f32(a_panel),
                    simd::as_f32(b_panel),
                    simd::acc_as_f32_mut(&mut acc),
                ) {
                    (Some(ap), Some(bp), Some(af)) => kern.micro_4x8_f32(ap, bp, af),
                    _ => micro_kernel(a_panel, b_panel, &mut acc),
                },
            }
            let c_row0 = ic + qa * MR;
            let c_col0 = jc + qb * NR;
            if accumulate {
                for i in 0..tile_rows {
                    let row = &mut c[(c_row0 + i) * n + c_col0..][..tile_cols];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot += acc[i][j];
                    }
                }
            } else {
                for i in 0..tile_rows {
                    let row = &mut c[(c_row0 + i) * n + c_col0..][..tile_cols];
                    row.copy_from_slice(&acc[i][..tile_cols]);
                }
            }
        }
    }
}

/// The register micro-kernel: `acc += Aᵖ ⊗ Bᵖ` summed over the packed depth.
///
/// `a_panel` and `b_panel` are tile-interleaved (`MR` / `NR` values per depth
/// step), so every iteration reads two short contiguous runs and issues
/// `MR × NR` independent fused multiply-adds — the compiler keeps the whole
/// accumulator tile in vector registers.
#[inline(always)]
fn micro_kernel<T: Scalar>(a_panel: &[T], b_panel: &[T], acc: &mut [[T; NR]; MR]) {
    let steps_a = a_panel.chunks_exact(MR);
    let steps_b = b_panel.chunks_exact(NR);
    for (ap, bp) in steps_a.zip(steps_b) {
        // Fixed-size views let the compiler drop all bounds checks.
        let ap: &[T; MR] = ap.try_into().expect("packed A panel is MR-aligned");
        let bp: &[T; NR] = bp.try_into().expect("packed B panel is NR-aligned");
        for i in 0..MR {
            let ai = ap[i];
            for j in 0..NR {
                acc[i][j] = ai.mul_add(bp[j], acc[i][j]);
            }
        }
    }
}

/// Monomorphic scalar micro-kernel entry for the [`crate::simd::Kernel`]
/// vtable (the guaranteed fallback and bit-identity reference).
pub(crate) fn micro_4x8_scalar_f64(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    micro_kernel(a_panel, b_panel, acc)
}

/// Monomorphic `f32` scalar micro-kernel entry (the screen-path fallback;
/// tolerance contract, see [`crate::simd`]).
pub(crate) fn micro_4x8_scalar_f32(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    micro_kernel(a_panel, b_panel, acc)
}

/// Reference `C = A·Bᵀ` as a double loop over [`dot`] — the paper's
/// "naïve inner products" brute force. Quadratically cache-unfriendly for
/// large `B`; kept for testing and the §II-B speedup measurement.
pub fn naive_gemm_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "naive_gemm_nt: dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let ai = a.row(i);
        let crow = c.row_mut(i);
        for (j, slot) in crow.iter_mut().enumerate() {
            *slot = dot(ai, b.row(j));
        }
    }
    c
}

/// Matrix–vector product `y = A·x` (one dot per row — the "matrix–vector"
/// middle ground of §II-B).
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn matvec<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(x.len(), a.cols(), "matvec: dimension mismatch");
    a.iter_rows().map(|row| dot(row, x)).collect()
}

/// Standard product `C = A·B` for row-major operands, implemented by
/// transposing `B` once and dispatching to the blocked `A·Bᵀ` kernel.
///
/// Only used on small matrices (e.g. applying an `f × f` SVD basis), where
/// the transpose copy is negligible.
pub fn matmul_nn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "matmul_nn: dimension mismatch");
    let bt = b.transpose();
    gemm_nt(a, &bt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        // Small deterministic LCG; avoids pulling rand into the crate deps.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn assert_close(a: &Matrix<f64>, b: &Matrix<f64>, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let (x, y) = (a.get(r, c), b.get(r, c));
                assert!(
                    (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                    "mismatch at ({r},{c}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn gemm_matches_naive_on_awkward_shapes() {
        // Shapes chosen to hit every edge: partial MR/NR tiles, k smaller and
        // larger than KC, single rows/cols.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 3),
            (17, 23, 31),
            (64, 64, 64),
            (33, 70, 129),
            (2, 100, 1),
            (100, 2, 200),
        ] {
            let a = random_matrix(m, k, 42 + m as u64);
            let b = random_matrix(n, k, 999 + n as u64);
            let fast = gemm_nt(&a, &b);
            let slow = naive_gemm_nt(&a, &b);
            assert_close(&fast, &slow, 1e-11 * k as f64);
        }
    }

    #[test]
    fn gemm_deep_k_crosses_multiple_kc_blocks() {
        // KC for f64 defaults to 256; k = 700 forces three depth passes and
        // exercises the accumulate path.
        let a = random_matrix(9, 700, 7);
        let b = random_matrix(13, 700, 8);
        assert_close(&gemm_nt(&a, &b), &naive_gemm_nt(&a, &b), 1e-9);
    }

    #[test]
    fn gemm_with_custom_tiny_blocks_still_correct() {
        let a = random_matrix(10, 20, 1);
        let b = random_matrix(12, 20, 2);
        let mut c = Matrix::zeros(10, 12);
        let blocks = BlockSizes {
            mc: 4,
            kc: 3,
            nc: 8,
        };
        gemm_nt_blocked((&a).into(), (&b).into(), c.as_mut_slice(), &blocks);
        assert_close(&c, &naive_gemm_nt(&a, &b), 1e-11);
    }

    #[test]
    fn gemm_empty_dimensions() {
        let a = Matrix::<f64>::zeros(0, 5);
        let b = Matrix::<f64>::zeros(3, 5);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 3);

        // k == 0: result is all zeros, and a dirty output buffer is cleared.
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(3, 0);
        let mut buf = vec![7.0; 6];
        gemm_nt_into((&a).into(), (&b).into(), &mut buf);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_rejects_mismatched_widths() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 4);
        let _ = gemm_nt(&a, &b);
    }

    #[test]
    #[should_panic(expected = "output buffer length mismatch")]
    fn gemm_rejects_bad_output_buffer() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let mut c = vec![0.0; 3];
        gemm_nt_into((&a).into(), (&b).into(), &mut c);
    }

    #[test]
    fn gemm_on_row_blocks_matches_full() {
        let a = random_matrix(20, 15, 3);
        let b = random_matrix(10, 15, 4);
        let full = gemm_nt(&a, &b);
        let mut c = vec![0.0; 5 * 10];
        gemm_nt_into(a.row_block(5, 10), (&b).into(), &mut c);
        for i in 0..5 {
            for j in 0..10 {
                assert!((c[i * 10 + j] - full.get(5 + i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_matches_gemm_column() {
        let a = random_matrix(11, 9, 5);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.3 - 1.0).collect();
        let xm = Matrix::from_vec(1, 9, x.clone()).unwrap();
        let y = matvec(&a, &x);
        let c = gemm_nt(&a, &xm);
        for (i, &yi) in y.iter().enumerate() {
            assert!((yi - c.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_nn_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul_nn(&a, &b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert!((c.get(0, 0) - 58.0).abs() < 1e-12);
        assert!((c.get(0, 1) - 64.0).abs() < 1e-12);
        assert!((c.get(1, 0) - 139.0).abs() < 1e-12);
        assert!((c.get(1, 1) - 154.0).abs() < 1e-12);
    }

    #[test]
    fn gemm_f32_matches_naive() {
        let a64 = random_matrix(19, 37, 11);
        let b64 = random_matrix(21, 37, 12);
        let a: Matrix<f32> = a64.cast();
        let b: Matrix<f32> = b64.cast();
        let fast = gemm_nt(&a, &b);
        let slow = naive_gemm_nt(&a, &b);
        for r in 0..fast.rows() {
            for c in 0..fast.cols() {
                assert!((fast.get(r, c) - slow.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn flops_counts_multiply_adds() {
        assert_eq!(gemm_flops(10, 20, 30), 2.0 * 10.0 * 20.0 * 30.0);
    }
}
