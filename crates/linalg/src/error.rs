//! Error type shared by the checked entry points of this crate.

use core::fmt;

/// Errors produced by checked matrix constructors and decompositions.
///
/// Hot kernels (`gemm`, `dot`, …) validate dimensions with assertions instead
/// of `Result`s — mismatches there are programming errors, and the solvers
/// validate all external input up front via the checked constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two shapes that were required to agree did not.
    DimensionMismatch {
        /// What the caller was doing, e.g. `"Matrix::from_vec"`.
        context: &'static str,
        /// Shape or length that was expected.
        expected: usize,
        /// Shape or length that was provided.
        actual: usize,
    },
    /// The input contained a NaN or infinity.
    NonFinite {
        /// What the caller was doing.
        context: &'static str,
    },
    /// An input that must be non-empty was empty.
    Empty {
        /// What the caller was doing.
        context: &'static str,
    },
    /// An iterative algorithm failed to converge within its sweep budget.
    NoConvergence {
        /// The algorithm that failed, e.g. `"jacobi_eigen"`.
        context: &'static str,
        /// Number of sweeps/iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context}: dimension mismatch (expected {expected}, got {actual})"
            ),
            LinalgError::NonFinite { context } => {
                write!(f, "{context}: input contains NaN or infinite values")
            }
            LinalgError::Empty { context } => write!(f, "{context}: input is empty"),
            LinalgError::NoConvergence {
                context,
                iterations,
            } => write!(f, "{context}: no convergence after {iterations} iterations"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            context: "Matrix::from_vec",
            expected: 12,
            actual: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("Matrix::from_vec"));
        assert!(msg.contains("12"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Empty { context: "gram" });
        assert!(e.to_string().contains("empty"));
    }
}
