//! Dense BLAS-like linear algebra kernels for exact maximum inner product search.
//!
//! This crate is the hardware-efficiency substrate of the repository: it plays
//! the role that Intel MKL / OpenBLAS play in the paper *"To Index or Not to
//! Index: Optimizing Exact Maximum Inner Product Search"* (Abuzaid et al.,
//! ICDE 2019). The paper's central observation is that a cache-blocked,
//! register-tiled dense matrix multiply ("blocked matrix multiply", BMM) beats
//! state-of-the-art MIPS indexes on many inputs purely through hardware
//! efficiency. Everything in this crate exists to make that brute-force path
//! genuinely fast:
//!
//! * [`Matrix`] — a dense row-major matrix over [`Scalar`] (`f32` or `f64`).
//! * [`gemm`] — a Goto/BLIS-style packed, cache-blocked `C = A·Bᵀ` kernel with
//!   an unrolled register micro-kernel, a panel-streaming driver for fused
//!   GEMM→top-k consumers, plus naive references for testing.
//! * [`kernels`] — level-1 routines (dot, axpy, norms) with unrolled
//!   accumulators.
//! * [`simd`] — runtime-dispatched AVX2+FMA / NEON micro-kernels behind a
//!   safe [`simd::Kernel`] vtable, with the scalar code as the guaranteed
//!   fallback (`MIPS_KERNEL=scalar` forces it). All `f64` kernels above
//!   route through the active set automatically.
//! * [`blocking`] — cache-geometry-aware tile-size selection, shared with the
//!   OPTIMUS optimizer (which sizes its sampling runs to occupy the L2 cache).
//! * [`eig`] / [`svd`] — a cyclic Jacobi symmetric eigensolver and the item
//!   SVD transform required by the FEXIPRO baseline.
//!
//! The row-major `A·Bᵀ` orientation is deliberate: in MIPS both the user and
//! item matrices store one vector per row, so `U·Iᵀ` walks contiguous memory
//! on both sides.

// `unsafe` is denied crate-wide and re-allowed *only* inside `simd`, whose
// module docs carry the safety contract for every intrinsic kernel.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod chol;
pub mod eig;
pub mod error;
pub mod gemm;
pub mod kernels;
pub mod matrix;
pub mod quant;
pub mod scalar;
pub mod simd;
pub mod svd;

pub use blocking::{BlockSizes, CacheConfig};
pub use error::LinalgError;
pub use gemm::{
    gemm_flops, gemm_nt, gemm_nt_blocked, gemm_nt_blocked_with, gemm_nt_into, gemm_nt_into_scratch,
    gemm_nt_stream_panels, gemm_nt_stream_panels_with, matmul_nn, matvec, naive_gemm_nt,
    GemmScratch,
};
pub use kernels::{
    axpy, dot, f32_screen_envelope, f32_screen_envelope_parts, norm2, norm2_sq, normalize, scale,
    sumsq_reassoc_bound,
};
pub use matrix::{Matrix, RowBlock};
pub use quant::{
    dot_i8, dot_i8_quad, i8_screen_envelope_parts, quantize_row_i8, scale_for, I8_DOT_MAX_LEN,
    I8_QUANT_LEVEL,
};
pub use scalar::Scalar;
pub use simd::Kernel;
