//! Dense row-major matrix storage.
//!
//! One vector per row is the natural layout for MIPS workloads: the user
//! matrix `U` is `|U| × f` and the item matrix `I` is `|I| × f`, and both the
//! GEMM kernel and the per-vector index traversals walk rows contiguously.

use crate::error::LinalgError;
use crate::scalar::Scalar;

/// A dense row-major matrix over `f32` or `f64`.
///
/// Invariant: `data.len() == rows * cols`, enforced by every constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a row-major buffer, validating the length.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices, validating that all rows agree in width.
    pub fn from_rows(rows: &[Vec<T>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty {
                context: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    expected: cols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Row `r` as a contiguous slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A contiguous sub-matrix view of rows `start..end` (zero-copy).
    ///
    /// Used by the BMM solver to process user batches and by OPTIMUS to time
    /// samples without copying.
    pub fn row_block(&self, start: usize, end: usize) -> RowBlock<'_, T> {
        assert!(start <= end && end <= self.rows, "row_block out of range");
        RowBlock {
            data: &self.data[start * self.cols..end * self.cols],
            rows: end - start,
            cols: self.cols,
        }
    }

    /// Copies the given rows (by index) into a new matrix.
    ///
    /// Used for gathering sampled users and cluster members.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix<T> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows index {i} out of range");
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// The transpose as a new matrix (blocked copy for cache friendliness).
    pub fn transpose(&self) -> Matrix<T> {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TILE) {
            for cb in (0..self.cols).step_by(TILE) {
                for r in rb..(rb + TILE).min(self.rows) {
                    for c in cb..(cb + TILE).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Euclidean norm of every row.
    pub fn row_norms(&self) -> Vec<T> {
        self.iter_rows().map(crate::kernels::norm2).collect()
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Validates that the matrix is non-empty and fully finite.
    pub fn validate(&self, context: &'static str) -> Result<(), LinalgError> {
        if self.is_empty() {
            return Err(LinalgError::Empty { context });
        }
        if !self.all_finite() {
            return Err(LinalgError::NonFinite { context });
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        crate::kernels::norm2(&self.data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Converts the element type (e.g. `f64` model → `f32` kernel input).
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

/// A zero-copy view of a contiguous block of rows of a [`Matrix`].
#[derive(Debug, Clone, Copy)]
pub struct RowBlock<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
}

impl<'a, T: Scalar> RowBlock<'a, T> {
    /// Wraps a raw row-major slice as a view (length must equal `rows*cols`).
    pub fn new(data: &'a [T], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "RowBlock length mismatch");
        RowBlock { data, rows, cols }
    }

    /// Number of rows in the view.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` of the view.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &'a [T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying contiguous storage.
    #[inline]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }
}

impl<'a, T: Scalar> From<&'a Matrix<T>> for RowBlock<'a, T> {
    fn from(m: &'a Matrix<T>) -> Self {
        m.row_block(0, m.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Matrix::from_vec(2, 3, vec![1.0_f64; 5]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_validates_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0_f64, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
        let err = Matrix::<f64>::from_rows(&[]).unwrap_err();
        assert!(matches!(err, LinalgError::Empty { .. }));
    }

    #[test]
    fn indexing_and_rows() {
        let m = sample();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_tiled() {
        let m = Matrix::<f64>::from_fn(70, 45, |r, c| (r * 45 + c) as f64);
        let t = m.transpose();
        for r in 0..70 {
            for c in 0..45 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn row_block_views_are_zero_copy_and_correct() {
        let m = sample();
        let b = m.row_block(1, 2);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.row(0), &[4.0, 5.0, 6.0]);
        let whole: RowBlock<f64> = (&m).into();
        assert_eq!(whole.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row_block out of range")]
    fn row_block_rejects_bad_range() {
        let m = sample();
        let _ = m.row_block(1, 3);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = sample();
        let g = m.gather_rows(&[1, 0, 1]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(g.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn row_norms_match_manual() {
        let m = Matrix::from_vec(2, 2, vec![3.0_f64, 4.0, 0.0, 2.0]).unwrap();
        let norms = m.row_norms();
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert!((norms[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_nan_and_empty() {
        let mut m = sample();
        m.set(0, 0, f64::NAN);
        assert!(matches!(
            m.validate("test"),
            Err(LinalgError::NonFinite { .. })
        ));
        let empty = Matrix::<f64>::zeros(0, 4);
        assert!(matches!(
            empty.validate("test"),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn cast_changes_width() {
        let m = sample();
        let f: Matrix<f32> = m.cast();
        assert_eq!(f.get(1, 2), 6.0_f32);
        let back: Matrix<f64> = f.cast();
        assert_eq!(back.get(1, 2), 6.0);
    }

    #[test]
    fn map_inplace_applies_elementwise() {
        let mut m = sample();
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.get(1, 1), 10.0);
    }
}
