//! Shared quantization helpers: scale selection, symmetric int8 rows, and
//! the conservative error envelope of the int8 screen path.
//!
//! Two consumers quantize in this workspace and both use the same scale
//! policy, implemented once here:
//!
//! * FEXIPRO's integer pruning stage (`mips-fexipro`) maps magnitudes onto
//!   a `bits`-wide unsigned range with a **ceiling** rounding so the
//!   quantized dot is a one-sided upper bound;
//! * the int8 screen mirror (`mips-data`) maps each row onto `[-127, 127]`
//!   with **round-to-nearest** and a per-row scale, trading the one-sided
//!   bound for a symmetric error envelope ([`i8_screen_envelope_parts`])
//!   half as wide.
//!
//! The scale policy ([`scale_for`]) is: map the largest magnitude of the
//! block onto the top of the representable range, and give all-zero blocks
//! the scale `1.0` (every quantized value is then `0`, and both consumers'
//! bounds degenerate to exactly `0`, which is correct for a zero vector).
//! Saturation is impossible by construction — `max_abs · scale ≤ max_level`
//! up to one float rounding, which both consumers absorb (FEXIPRO's ceil
//! stays a valid upper bound; the i8 path clamps to the symmetric range and
//! its envelope slack covers the half-ulp this can move a code point).

use crate::simd;

/// The scale mapping a block's largest magnitude onto `max_level`:
/// `scale_for(m, L) = L / m`, with all-zero blocks (`m ≤ 0`) pinned to
/// `1.0` so downstream quantized values are exactly `0`.
///
/// `max_abs` must be finite and non-negative (callers quantize validated
/// factor blocks). The returned scale can still overflow to `+∞` when
/// `max_abs` is subnormal-small; quantizing consumers must check
/// [`f64::is_finite`] on the scale and fall back to their unquantized path
/// rather than produce saturated garbage.
#[inline]
pub fn scale_for(max_abs: f64, max_level: f64) -> f64 {
    if max_abs <= 0.0 {
        1.0
    } else {
        max_level / max_abs
    }
}

/// The symmetric int8 code range: quantized values live in `[-127, 127]`
/// (the two's-complement `-128` is never produced, keeping negation exact).
pub const I8_QUANT_LEVEL: f64 = 127.0;

/// Maximum vector length the int8 dot kernels accept.
///
/// The kernels accumulate in `i32`; the worst case per coordinate is
/// `127² = 16129`, so `f ≤ 65536` bounds any accumulation order by
/// `2³⁰.3 < i32::MAX` with a 2× margin. Factor counts beyond this are far
/// outside any MF model this repository targets; consumers gate their i8
/// mirrors on it ([`mips_data::MirrorI8`] marks itself unusable).
pub const I8_DOT_MAX_LEN: usize = 65536;

/// Quantizes one row symmetrically into `out`, returning `(scale, l1)`:
/// the per-row scale (`scale_for(max|row|, 127)`) and the row's exact-f64
/// L1 norm `Σ|row_j|`, which the screen envelope needs.
///
/// Each coordinate becomes `round(v·scale)` clamped to `[-127, 127]`, so
/// `|out_j / scale − row_j| ≤ (0.5 + 127·ε)/scale` — the half-step bound
/// the envelope in [`i8_screen_envelope_parts`] is built on.
///
/// The row must be finite. A subnormal-small `max_abs` can push the scale
/// to `+∞`; callers must check `scale.is_finite()` before using the
/// quantized row (the clamp keeps `out` well-defined regardless).
///
/// # Panics
/// Panics if `out.len() != row.len()`.
pub fn quantize_row_i8(row: &[f64], out: &mut [i8]) -> (f64, f64) {
    assert_eq!(out.len(), row.len(), "quantize_row_i8: length mismatch");
    let mut max_abs = 0.0f64;
    let mut l1 = 0.0f64;
    for &v in row {
        let a = v.abs();
        max_abs = max_abs.max(a);
        l1 += a;
    }
    let scale = scale_for(max_abs, I8_QUANT_LEVEL);
    for (o, &v) in out.iter_mut().zip(row) {
        // `as i8` saturates on the (non-finite-scale) degenerate case, so
        // this cast is well-defined even before the caller's finiteness
        // check; the clamp makes the intended range explicit.
        *o = (v * scale).round().clamp(-I8_QUANT_LEVEL, I8_QUANT_LEVEL) as i8;
    }
    (scale, l1)
}

/// Slack factor of the i8 screen envelope: covers every f64 rounding in
/// evaluating the screen score, the envelope itself, and the cached scales
/// and L1 norms (each contributes relative error `O(f·ε₆₄) ≪ 10⁻⁴`).
const I8_SCREEN_SLACK: f64 = 1.0001;

/// The per-user coefficients `(a_u, b_u)` of the int8 screen envelope:
/// for user `u` (quantized with scale `s_u`, L1 norm `‖u‖₁`) and item `i`
/// (scale `s_i`, L1 norm `‖i‖₁`),
///
/// ```text
/// |ŝ − s| ≤ a_u·(1/s_i) + b_u·‖i‖₁
/// ```
///
/// where `s = uᵀi` is the exact score and `ŝ = (q_u·q_i)/(s_u·s_i)` the
/// screen score computed from the quantized rows. Derivation: write
/// `u_j = (q_{u,j} + δ_j)/s_u` and `i_j = (q_{i,j} + γ_j)/s_i` with
/// `|δ_j|, |γ_j| ≤ ½` (round-to-nearest). Expanding `s·s_u·s_i` around the
/// exact integer dot `D = Σ q_{u,j} q_{i,j}` leaves three error sums:
///
/// ```text
/// |s − ŝ| ≤ [ ½·Σ|q_{u,j}| + ½·Σ|q_{i,j}| + ¼·f ] / (s_u·s_i)
/// ```
///
/// and bounding `Σ|q_{u,j}| ≤ s_u·‖u‖₁ + ½f` (ditto for `i`) gives
///
/// ```text
/// |s − ŝ| ≤ ½·‖u‖₁/s_i + ½·‖i‖₁/s_u + ¾·f/(s_u·s_i)
///         = (½‖u‖₁ + ¾f/s_u)·(1/s_i)  +  (½/s_u)·‖i‖₁ .
/// ```
///
/// The two factored coefficients are returned with a `1.0001` slack that
/// absorbs every f64 rounding step in the chain (quantization computed
/// `v·s` with one rounding; `ŝ` is one exact integer converted and two
/// roundings; the envelope and the cached norms add `O(f·ε₆₄)` — all
/// orders of magnitude below the slack).
///
/// Unlike the f32 screen, the screen *score* itself carries no
/// kernel-dependent term: the integer dot `D` is exact in `i32` under
/// every accumulation order (guarded by [`I8_DOT_MAX_LEN`]), so all kernel
/// sets screen with identical scores and identical candidate sets.
#[inline]
pub fn i8_screen_envelope_parts(f: usize, user_scale: f64, user_l1: f64) -> (f64, f64) {
    let f = f as f64;
    (
        (0.5 * user_l1 + 0.75 * f / user_scale) * I8_SCREEN_SLACK,
        (0.5 / user_scale) * I8_SCREEN_SLACK,
    )
}

/// Int8 dot product `xᵀy`, exact in `i32`, via the process-wide dispatched
/// kernel set. All kernel sets produce the identical integer (the sum is
/// associative), so — unlike [`crate::dot`] on floats — this is
/// bit-identical across `scalar`, `avx2-fma` and `neon` by construction.
///
/// # Panics
/// Panics if the lengths differ or exceed [`I8_DOT_MAX_LEN`].
#[inline]
pub fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    simd::active().dot_i8(x, y)
}

/// Four int8 dot products `xᵀy_q` at once — the pipelined form for scan
/// loops (four independent integer chains hide the multiply latency).
///
/// # Panics
/// Panics if any length differs from `x`'s or exceeds [`I8_DOT_MAX_LEN`].
#[inline]
pub fn dot_i8_quad(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    simd::active().dot_i8_quad(x, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn scale_for_pins_zero_blocks_to_one() {
        assert_eq!(scale_for(0.0, I8_QUANT_LEVEL), 1.0);
        assert_eq!(scale_for(-0.0, 4095.0), 1.0);
        assert_eq!(scale_for(2.0, 127.0), 63.5);
    }

    #[test]
    fn scale_for_saturation_edge_maps_max_to_top_of_range() {
        // The largest magnitude lands exactly on the top code (up to one
        // rounding), so round-to-nearest can never exceed the range by
        // more than the clamp absorbs.
        for max_abs in [1e-3, 1.0, 3.7, 1e6] {
            let s = scale_for(max_abs, I8_QUANT_LEVEL);
            let top = (max_abs * s).round();
            assert_eq!(top, I8_QUANT_LEVEL, "max_abs {max_abs}");
        }
    }

    #[test]
    fn scale_for_overflows_to_infinity_on_subnormal_blocks() {
        // Documented degenerate case: consumers must detect and fall back.
        assert!(!scale_for(f64::MIN_POSITIVE / 256.0, 1e300).is_finite());
    }

    #[test]
    fn quantize_row_i8_all_zero_row() {
        let row = [0.0f64; 7];
        let mut q = [1i8; 7];
        let (scale, l1) = quantize_row_i8(&row, &mut q);
        assert_eq!(scale, 1.0);
        assert_eq!(l1, 0.0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn quantize_row_i8_saturating_magnitudes_stay_in_range() {
        // A huge outlier forces every other coordinate toward zero codes;
        // the outlier itself maps to ±127 and nothing escapes the range.
        let row = [1e30, -1e30, 1.0, -1.0, 0.0];
        let mut q = [0i8; 5];
        let (scale, _) = quantize_row_i8(&row, &mut q);
        assert!(scale.is_finite());
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(q[2], 0);
        assert!(q.iter().all(|&v| (-127..=127).contains(&v)));
    }

    #[test]
    fn quantize_row_i8_half_step_error_bound_holds() {
        for seed in 0..8u64 {
            let row = pseudo(33, seed);
            let mut q = [0i8; 33];
            let (scale, l1) = quantize_row_i8(&row, &mut q);
            let direct_l1: f64 = row.iter().map(|v| v.abs()).sum();
            assert_eq!(l1, direct_l1);
            for (j, (&code, &v)) in q.iter().zip(&row).enumerate() {
                let err = (code as f64 / scale - v).abs();
                assert!(
                    err <= (0.5 + 1e-9) / scale,
                    "seed {seed} j {j}: err {err} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn envelope_contains_the_exact_score_on_adversarial_rows() {
        // Near-cancelling pairs and saturating outliers: the dequantized
        // screen score must stay within the envelope of the exact score.
        for seed in 0..12u64 {
            let f = 50usize;
            let u = pseudo(f, seed * 2 + 1);
            let mut i = pseudo(f, seed * 2 + 2);
            if seed % 3 == 0 {
                // Outlier magnitude forces coarse item codes.
                i[0] = 1e4;
            }
            if seed % 3 == 1 {
                // Near-negated copy: exact score nearly cancels.
                i = u.iter().map(|&v| -v).collect();
            }
            let mut qu = vec![0i8; f];
            let mut qi = vec![0i8; f];
            let (su, l1u) = quantize_row_i8(&u, &mut qu);
            let (si, l1i) = quantize_row_i8(&i, &mut qi);
            let d: i32 = qu.iter().zip(&qi).map(|(&a, &b)| a as i32 * b as i32).sum();
            let shat = d as f64 * ((1.0 / su) * (1.0 / si));
            let exact: f64 = u.iter().zip(&i).map(|(a, b)| a * b).sum();
            let (a_u, b_u) = i8_screen_envelope_parts(f, su, l1u);
            let env = a_u * (1.0 / si) + b_u * l1i;
            assert!(
                (shat - exact).abs() <= env,
                "seed {seed}: |{shat} - {exact}| > {env}"
            );
        }
    }

    #[test]
    fn dispatched_i8_dots_are_bit_identical_to_a_plain_loop() {
        for len in [0usize, 1, 3, 16, 31, 32, 50, 257] {
            let x: Vec<i8> = (0..len).map(|j| ((j * 37 + 11) % 255) as i8).collect();
            let ys: Vec<Vec<i8>> = (0..4)
                .map(|q| {
                    (0..len)
                        .map(|j| ((j * 13 + q * 91 + 5) % 255) as i8)
                        .collect()
                })
                .collect();
            let want: Vec<i32> = ys
                .iter()
                .map(|y| x.iter().zip(y).map(|(&a, &b)| a as i32 * b as i32).sum())
                .collect();
            assert_eq!(dot_i8(&x, &ys[0]), want[0], "len {len}");
            let quad = dot_i8_quad(&x, [&ys[0], &ys[1], &ys[2], &ys[3]]);
            assert_eq!(quad.to_vec(), want, "len {len}");
        }
    }

    #[test]
    fn i8_dot_worst_case_fits_i32_at_the_length_cap() {
        // The documented overflow argument: f · 127² at the cap.
        let worst = I8_DOT_MAX_LEN as i64 * 127 * 127;
        assert!(worst < i32::MAX as i64);
    }
}
