//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! FEXIPRO's "S" stage needs the SVD of the item matrix; for latent-factor
//! models `f ≤ a few hundred`, the right singular vectors are the
//! eigenvectors of the `f × f` Gram matrix `IᵀI`, which cyclic Jacobi
//! diagonalizes robustly in `O(f³)` per sweep with excellent accuracy on
//! symmetric positive semi-definite inputs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Result of a symmetric eigendecomposition, sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct SymEigen<T> {
    /// Eigenvalues, descending.
    pub values: Vec<T>,
    /// Eigenvectors as matrix columns: `vectors.get(i, j)` is component `i`
    /// of the eigenvector paired with `values[j]`.
    pub vectors: Matrix<T>,
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 50;

/// Diagonalizes a symmetric matrix with the cyclic Jacobi method.
///
/// The input must be square and (numerically) symmetric; the strictly lower
/// triangle is ignored. Returns eigenpairs sorted by descending eigenvalue.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] for non-square input.
/// * [`LinalgError::NonFinite`] if the input contains NaN/∞.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass fails to vanish
///   within the sweep budget (does not happen for PSD Gram matrices).
pub fn jacobi_eigen<T: Scalar>(a: &Matrix<T>) -> Result<SymEigen<T>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "jacobi_eigen",
            expected: n,
            actual: a.cols(),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty {
            context: "jacobi_eigen",
        });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite {
            context: "jacobi_eigen",
        });
    }

    let mut m = a.clone();
    // Symmetrize: use the mean of the two triangles so tiny asymmetries from
    // accumulated rounding do not bias the rotations.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = (m.get(i, j) + m.get(j, i)) / (T::ONE + T::ONE);
            m.set(i, j, avg);
            m.set(j, i, avg);
        }
    }
    let mut v = Matrix::<T>::zeros(n, n);
    for i in 0..n {
        v.set(i, i, T::ONE);
    }

    let frob = m.frobenius_norm();
    let tol = frob * T::EPSILON * T::from_usize(n);

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol || off == T::ZERO {
            return Ok(sorted_eigen(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                rotate(&mut m, &mut v, p, q);
            }
        }
    }
    // One final check: the last sweep may have converged.
    if off_diagonal_norm(&m) <= tol {
        return Ok(sorted_eigen(m, v));
    }
    Err(LinalgError::NoConvergence {
        context: "jacobi_eigen",
        iterations: MAX_SWEEPS,
    })
}

/// Frobenius norm of the strictly upper triangle (the symmetric off-diagonal
/// mass driven to zero by the sweeps).
fn off_diagonal_norm<T: Scalar>(m: &Matrix<T>) -> T {
    let n = m.rows();
    let mut acc = T::ZERO;
    for i in 0..n {
        for j in (i + 1)..n {
            let x = m.get(i, j);
            acc = x.mul_add(x, acc);
        }
    }
    acc.sqrt()
}

/// One Jacobi rotation zeroing `m[p][q]`, applied two-sided to `m` and
/// accumulated into the eigenvector matrix `v`.
fn rotate<T: Scalar>(m: &mut Matrix<T>, v: &mut Matrix<T>, p: usize, q: usize) {
    let apq = m.get(p, q);
    if apq == T::ZERO {
        return;
    }
    let app = m.get(p, p);
    let aqq = m.get(q, q);
    let two = T::ONE + T::ONE;
    // Classic stable computation of tan(theta) for the annihilating rotation.
    let theta = (aqq - app) / (two * apq);
    let t = {
        let sign = if theta >= T::ZERO { T::ONE } else { -T::ONE };
        sign / (theta.abs() + (theta.mul_add(theta, T::ONE)).sqrt())
    };
    let c = T::ONE / (t.mul_add(t, T::ONE)).sqrt();
    let s = t * c;

    let n = m.rows();
    for i in 0..n {
        let mip = m.get(i, p);
        let miq = m.get(i, q);
        m.set(i, p, c * mip - s * miq);
        m.set(i, q, s * mip + c * miq);
    }
    for j in 0..n {
        let mpj = m.get(p, j);
        let mqj = m.get(q, j);
        m.set(p, j, c * mpj - s * mqj);
        m.set(q, j, s * mpj + c * mqj);
    }
    for i in 0..n {
        let vip = v.get(i, p);
        let viq = v.get(i, q);
        v.set(i, p, c * vip - s * viq);
        v.set(i, q, s * vip + c * viq);
    }
    // Enforce exact zero at the annihilated position to stop rounding drift.
    m.set(p, q, T::ZERO);
    m.set(q, p, T::ZERO);
}

/// Extracts the diagonal, sorts eigenpairs by descending eigenvalue, and
/// permutes the eigenvector columns to match.
fn sorted_eigen<T: Scalar>(m: Matrix<T>, v: Matrix<T>) -> SymEigen<T> {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<T> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| diag[b].total_cmp(&diag[a]));

    let values: Vec<T> = order.iter().map(|&j| diag[j]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_nn;

    fn reconstruct(e: &SymEigen<f64>) -> Matrix<f64> {
        // A = V diag(λ) Vᵀ
        let n = e.values.len();
        let mut scaled = e.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled.set(i, j, e.vectors.get(i, j) * e.values[j]);
            }
        }
        matmul_nn(&scaled, &e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn random_symmetric_reconstructs() {
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 12, 33] {
            let mut a = Matrix::<f64>::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v = next();
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let e = jacobi_eigen(&a).unwrap();
            let rec = reconstruct(&e);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec.get(i, j) - a.get(i, j)).abs() < 1e-9,
                        "n={n} ({i},{j})"
                    );
                }
            }
            // Sorted descending.
            for w in e.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.25, 0.5, 0.25, 2.0]).unwrap();
        let e = jacobi_eigen(&a).unwrap();
        let vtv = matmul_nn(&e.vectors.transpose(), &e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            jacobi_eigen(&rect),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let empty = Matrix::<f64>::zeros(0, 0);
        assert!(matches!(
            jacobi_eigen(&empty),
            Err(LinalgError::Empty { .. })
        ));
        let mut nan = Matrix::<f64>::zeros(2, 2);
        nan.set(0, 1, f64::NAN);
        assert!(matches!(
            jacobi_eigen(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn psd_gram_matrix_eigenvalues_nonnegative() {
        // Gram of a random 10×4: eigenvalues must be ≥ 0 (within rounding).
        let b = Matrix::<f64>::from_fn(10, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 / 11.0 - 0.4);
        let g = matmul_nn(&b.transpose(), &b);
        let e = jacobi_eigen(&g).unwrap();
        for &l in &e.values {
            assert!(l > -1e-10);
        }
    }
}
