//! Cache-geometry-aware blocking parameters.
//!
//! The GEMM driver tiles its three loops so that the packed panels it streams
//! through stay resident in the right level of the cache hierarchy (the
//! Goto/BLIS decomposition):
//!
//! * a `KC × NR` micro-panel of B must live in L1 while the micro-kernel runs,
//! * the packed `MC × KC` block of A must live in L2,
//! * the packed `KC × NC` panel of B must live in L3.
//!
//! OPTIMUS reuses [`CacheConfig`] for a different purpose: §IV-A of the paper
//! requires the sampled user block to *at least occupy the L2 cache* so that
//! the timed sample exhibits the same blocking behaviour as the full run.

use crate::scalar::Scalar;

/// Cache sizes used to derive blocking parameters.
///
/// Defaults mirror the paper's evaluation machine (Intel Xeon E7-4850 v3:
/// 32 KB L1D, 256 KB L2 per core, large shared L3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Per-core L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// Per-core L2 cache size in bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache size in bytes.
    pub l3_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 8 * 1024 * 1024,
        }
    }
}

impl CacheConfig {
    /// How many `f`-dimensional vectors of element size `bytes` are needed to
    /// occupy the L2 cache.
    ///
    /// This is OPTIMUS's minimum sample size rule (§IV-A): timing BMM on fewer
    /// rows than this degenerates toward matrix–vector multiply and
    /// underestimates BMM throughput.
    pub fn rows_to_fill_l2(&self, f: usize, bytes: usize) -> usize {
        let row_bytes = (f * bytes).max(1);
        self.l2_bytes.div_ceil(row_bytes).max(1)
    }
}

/// Loop tile sizes for the packed GEMM driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of A packed per outer iteration (L2-resident block).
    pub mc: usize,
    /// Depth (shared dimension) packed per iteration (L1/L2 balance).
    pub kc: usize,
    /// Rows of B (columns of C) packed per iteration (L3-resident panel).
    pub nc: usize,
}

/// Micro-kernel tile height (rows of A per register tile).
pub const MR: usize = 4;
/// Micro-kernel tile width (rows of B / columns of C per register tile).
pub const NR: usize = 8;

impl BlockSizes {
    /// Derives tile sizes for element type `T` from the cache geometry.
    ///
    /// The heuristics follow the BLIS analytical model, halving each level to
    /// leave room for the streaming source operands:
    /// `KC·NR·sizeof(T) ≤ L1/2`, `MC·KC·sizeof(T) ≤ L2/2`,
    /// `KC·NC·sizeof(T) ≤ L3/2`.
    pub fn for_scalar<T: Scalar>(cache: &CacheConfig) -> BlockSizes {
        let sz = T::BYTES;
        let kc = (cache.l1_bytes / 2 / (NR * sz)).clamp(64, 512);
        let mc = (cache.l2_bytes / 2 / (kc * sz)).clamp(MR, 512);
        // Round MC down to a multiple of MR so packed panels are uniform.
        let mc = (mc / MR).max(1) * MR;
        let nc = (cache.l3_bytes / 2 / (kc * sz)).clamp(NR, 8192);
        let nc = (nc / NR).max(1) * NR;
        BlockSizes { mc, kc, nc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_machine() {
        let c = CacheConfig::default();
        assert_eq!(c.l2_bytes, 256 * 1024);
    }

    #[test]
    fn block_sizes_respect_cache_budgets() {
        let cache = CacheConfig::default();
        let b = BlockSizes::for_scalar::<f64>(&cache);
        assert!(b.kc * NR * 8 <= cache.l1_bytes, "B micro-panel spills L1");
        assert!(b.mc * b.kc * 8 <= cache.l2_bytes, "A block spills L2");
        assert!(b.nc * b.kc * 8 <= cache.l3_bytes, "B panel spills L3");
        assert_eq!(b.mc % MR, 0);
        assert_eq!(b.nc % NR, 0);
    }

    #[test]
    fn f32_blocks_are_at_least_as_deep_as_f64() {
        let cache = CacheConfig::default();
        let b32 = BlockSizes::for_scalar::<f32>(&cache);
        let b64 = BlockSizes::for_scalar::<f64>(&cache);
        assert!(b32.kc >= b64.kc);
    }

    #[test]
    fn tiny_caches_still_yield_valid_tiles() {
        let cache = CacheConfig {
            l1_bytes: 1024,
            l2_bytes: 2048,
            l3_bytes: 4096,
        };
        let b = BlockSizes::for_scalar::<f64>(&cache);
        assert!(b.mc >= MR);
        assert!(b.nc >= NR);
        assert!(b.kc >= 64); // clamp floor keeps the kernel efficient
    }

    #[test]
    fn rows_to_fill_l2_is_monotone_in_f() {
        let c = CacheConfig::default();
        let r10 = c.rows_to_fill_l2(10, 8);
        let r100 = c.rows_to_fill_l2(100, 8);
        assert!(r10 > r100);
        assert_eq!(c.rows_to_fill_l2(100, 8), (256 * 1024usize).div_ceil(800));
        assert!(c.rows_to_fill_l2(usize::MAX / 16, 8) >= 1);
    }
}
