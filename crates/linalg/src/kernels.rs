//! Level-1 kernels: dot products, norms, axpy, scaling.
//!
//! These are the `sdot`-style routines the paper contrasts against blocked
//! matrix multiply. Every accumulating kernel uses four independent
//! accumulators so four FMA chains stay in flight; a single-accumulator loop
//! serializes on the FMA latency and runs several times slower.
//!
//! Double-precision inputs are routed through the process-wide SIMD kernel
//! set ([`crate::simd::active`]) — AVX2+FMA or NEON when available — whose
//! results are bit-identical to the scalar bodies below (see the contract in
//! [`crate::simd`]). Other scalar types take the portable path. This makes
//! every `f64` caller in the workspace (LEMP's LENGTH/INCR scans, MAXIMUS's
//! list walks, FEXIPRO's partial products, the naive GEMM reference) pick up
//! the dispatched kernels without code changes.

use crate::scalar::Scalar;
use crate::simd;

/// Dot product `xᵀy` with unrolled independent accumulators
/// (SIMD-dispatched for `f64`).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if let (Some(xf), Some(yf)) = (simd::as_f64(x), simd::as_f64(y)) {
        return T::from_f64(simd::active().dot(xf, yf));
    }
    if let (Some(xf), Some(yf)) = (simd::as_f32(x), simd::as_f32(y)) {
        return T::from_f64(simd::active().dot_f32(xf, yf) as f64);
    }
    dot_scalar(x, y)
}

/// The portable dot product body (the scalar kernel-set entry).
#[inline]
fn dot_scalar<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc0 = T::ZERO;
    let mut acc1 = T::ZERO;
    let mut acc2 = T::ZERO;
    let mut acc3 = T::ZERO;
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        acc0 = xs[0].mul_add(ys[0], acc0);
        acc1 = xs[1].mul_add(ys[1], acc1);
        acc2 = xs[2].mul_add(ys[2], acc2);
        acc3 = xs[3].mul_add(ys[3], acc3);
    }
    let mut tail = T::ZERO;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail = a.mul_add(b, tail);
    }
    ((acc0 + acc1) + (acc2 + acc3)) + tail
}

/// Dot product with the **GEMM micro-kernel's per-element reduction**: one
/// accumulator, sequential fused multiply-add over the shared dimension.
///
/// Every blocked-GEMM entry point in this crate accumulates each output
/// element `C[i][j]` sequentially over `k` (a single FMA chain per
/// element, across panel boundaries), so this kernel reproduces any
/// `gemm_nt*` output bit-for-bit for the same row pair — under every
/// kernel set, since the SIMD tiles keep the same per-element chain. The
/// default [`dot`] does not: its four independent accumulator lanes
/// combine in a different order and can differ in the last ulp.
///
/// Use this where a single recomputed score must agree bit-for-bit with
/// GEMM-produced scores (e.g. canonicalizing an index's reported top-k
/// values). The single chain serializes on the FMA latency, so it is
/// several times slower than [`dot`] on long vectors — keep it off bulk
/// scan paths.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot_gemm_ordered<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot_gemm_ordered: length mismatch");
    let mut acc = T::ZERO;
    for (a, b) in x.iter().zip(y) {
        acc = a.mul_add(*b, acc);
    }
    acc
}

/// Four GEMM-ordered dot products `xᵀy_i` at once (SIMD-dispatched for
/// `f64` so the fused multiply-adds stay hardware instructions): each
/// product is one sequential FMA chain — [`dot_gemm_ordered`]'s reduction
/// — and the four independent chains pipeline, so a bulk canonicalizing
/// pass is throughput-bound instead of FMA-latency-bound.
///
/// # Panics
/// Panics if any `y` length differs from `x`'s.
#[inline]
pub fn dot_gemm_ordered_x4(x: &[f64], ys: [&[f64]; 4]) -> [f64; 4] {
    simd::active().dot_seq4(x, ys)
}

/// Monomorphic scalar entries for the [`crate::simd::Kernel`] vtable.
pub(crate) fn dot_scalar_f64(x: &[f64], y: &[f64]) -> f64 {
    dot_scalar(x, y)
}

/// Scalar body of [`crate::simd::Kernel::dot_seq4`]. On targets without
/// baseline FMA the `mul_add`s go through libm's (hardware-backed,
/// correctly rounded) `fma`, so results stay bit-identical to the SIMD
/// kernel sets — only slower, which is the scalar set's usual deal.
pub(crate) fn dot_seq4_scalar_f64(x: &[f64], ys: [&[f64]; 4]) -> [f64; 4] {
    let [y0, y1, y2, y3] = ys;
    let mut acc = [0.0f64; 4];
    for (j, &u) in x.iter().enumerate() {
        acc[0] = u.mul_add(y0[j], acc[0]);
        acc[1] = u.mul_add(y1[j], acc[1]);
        acc[2] = u.mul_add(y2[j], acc[2]);
        acc[3] = u.mul_add(y3[j], acc[3]);
    }
    acc
}

pub(crate) fn axpy_scalar_f64(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_scalar(alpha, x, y)
}

pub(crate) fn dist2_sq_scalar_f64(x: &[f64], y: &[f64]) -> f64 {
    dist2_sq_scalar(x, y)
}

pub(crate) fn suffix_sumsq_scalar_f64(x: &[f64], out: &mut [f64]) {
    suffix_sumsq_scalar(x, out)
}

/// Monomorphic `f32` scalar entries for the [`crate::simd::Kernel`] vtable
/// (the screen-path kernels; tolerance contract, see [`crate::simd`]).
pub(crate) fn dot_scalar_f32(x: &[f32], y: &[f32]) -> f32 {
    dot_scalar(x, y)
}

pub(crate) fn suffix_sumsq_scalar_f32(x: &[f32], out: &mut [f32]) {
    suffix_sumsq_scalar(x, out)
}

/// Scalar body of [`crate::simd::Kernel::dot_i8`]: widening i8×i8→i32
/// multiply-accumulate. Integer addition is associative, so every kernel
/// set (and any unrolling the autovectorizer applies here) produces the
/// identical `i32` — the i8 screen's bit-identity needs no envelope term
/// for accumulation order. Overflow-free for `x.len() ≤ I8_DOT_MAX_LEN`
/// (see [`crate::quant::I8_DOT_MAX_LEN`]), which the safe vtable wrapper
/// asserts.
pub(crate) fn dot_scalar_i8(x: &[i8], y: &[i8]) -> i32 {
    let mut acc0 = 0i32;
    let mut acc1 = 0i32;
    let mut acc2 = 0i32;
    let mut acc3 = 0i32;
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        acc0 += xs[0] as i32 * ys[0] as i32;
        acc1 += xs[1] as i32 * ys[1] as i32;
        acc2 += xs[2] as i32 * ys[2] as i32;
        acc3 += xs[3] as i32 * ys[3] as i32;
    }
    let mut tail = 0i32;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += a as i32 * b as i32;
    }
    acc0 + acc1 + acc2 + acc3 + tail
}

/// Scalar body of [`crate::simd::Kernel::dot_i8_quad`]: four independent
/// integer chains sharing the `x` loads, so the scan loop that consumes
/// groups of four item rows stays throughput-bound.
pub(crate) fn dot_i8_quad_scalar(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    let [y0, y1, y2, y3] = ys;
    let mut acc = [0i32; 4];
    for (j, &u) in x.iter().enumerate() {
        let u = u as i32;
        acc[0] += u * y0[j] as i32;
        acc[1] += u * y1[j] as i32;
        acc[2] += u * y2[j] as i32;
        acc[3] += u * y3[j] as i32;
    }
    acc
}

/// Machine epsilon of the f32 *rounding* step: `2⁻²⁴` (half the ulp of 1.0).
const EPS_ROUND_F32: f64 = 5.960_464_477_539_063e-8;

/// Conservative absolute error envelope of a single-precision screen score.
///
/// Let `s = uᵀi` be the exact double-precision score of user `u` and item
/// `i`, and `ŝ` the value any [`crate::simd::Kernel::dot_f32`] kernel
/// produces from the *rounded* operands `fl₃₂(u)`, `fl₃₂(i)`. Then
///
/// ```text
/// |ŝ − s| ≤ f32_screen_envelope(f, ‖u‖, ‖i‖)
/// ```
///
/// for every accumulation order the kernels use. Derivation (standard
/// rounding-error analysis, e.g. Higham, *Accuracy and Stability of
/// Numerical Algorithms*, ch. 3, with `ε = 2⁻²⁴`):
///
/// * rounding each operand contributes at most `2ε + ε²` relative error per
///   product term;
/// * multiplying and summing `f` terms in *any* association order, with or
///   without FMA fusion, contributes at most `γ_f = f·ε/(1 − f·ε)` relative
///   error per term;
/// * bounding `Σ|u_j·i_j| ≤ ‖u‖·‖i‖` (Cauchy–Schwarz) turns the per-term
///   relative bound into the absolute bound `(f + 2)·ε·(1 + o(1))·‖u‖·‖i‖`.
///
/// The returned envelope is `(2f + 8)·ε·1.0001·‖u‖·‖i‖ — more than double
/// the derived bound — plus an absolute term `(f + 4)·2⁻¹²⁶` covering the
/// region where intermediate f32 values go subnormal and the relative model
/// breaks down. The slack also absorbs the (f64, correctly rounded)
/// evaluation of the envelope itself and of the cached norms. Widening a
/// screen bound by this envelope therefore never excludes a true top-k
/// member; the trade is a slightly larger rescore set.
#[inline]
pub fn f32_screen_envelope(f: usize, unorm: f64, inorm: f64) -> f64 {
    let (rel, abs) = f32_screen_envelope_parts(f);
    rel * unorm * inorm + abs
}

/// The `(relative, absolute)` coefficients of [`f32_screen_envelope`]:
/// `envelope = rel·‖u‖·‖i‖ + abs`. Exposed so a scan loop can hoist
/// `rel·‖u‖` out of its per-item envelope evaluation; the envelope's ≥2×
/// slack covers the rounding difference between the factored and direct
/// evaluations.
#[inline]
pub fn f32_screen_envelope_parts(f: usize) -> (f64, f64) {
    let f = f as f64;
    (
        (2.0 * f + 8.0) * EPS_ROUND_F32 * 1.0001,
        (f + 4.0) * (f32::MIN_POSITIVE as f64),
    )
}

/// Upper bound on the *relative* disagreement between any two summation
/// orders of `n` squared terms in f64 — the actual bound behind the
/// suffix-sumsq "epsilon-covered exception" of [`crate::simd`].
///
/// Each computed suffix `Σ x_j²` (serial FMA chain or block-re-associated
/// vector scan) differs from the exact value by at most `γ_n = n·ε/(1−n·ε)`
/// relative (`ε = 2⁻⁵³`; the squares are non-negative, so the term-wise
/// bound is also the sum-wise bound). Two different orders therefore differ
/// from *each other* by at most `2γ_n` relative. Pruning bounds built on
/// suffix norms stay conservative as long as they are inflated by at least
/// this much — LEMP's `BOUND_EPS = 1e-10` dominates it for every feasible
/// factor count (`2γ_n < 1e-10` up to n ≈ 2.2×10⁵), which the bound tests
/// in `mips-lemp` assert rather than assume.
#[inline]
pub fn sumsq_reassoc_bound(n: usize) -> f64 {
    let ne = n as f64 * f64::EPSILON * 0.5;
    2.0 * ne / (1.0 - ne)
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm2_sq<T: Scalar>(x: &[T]) -> T {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm2<T: Scalar>(x: &[T]) -> T {
    norm2_sq(x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖²` with unrolled independent
/// accumulators (SIMD-dispatched for `f64`).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dist2_sq<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    if let (Some(xf), Some(yf)) = (simd::as_f64(x), simd::as_f64(y)) {
        return T::from_f64(simd::active().dist2_sq(xf, yf));
    }
    dist2_sq_scalar(x, y)
}

/// Portable `dist2_sq` body: four FMA chains in flight, matching [`dot`]'s
/// accumulator layout (a single-accumulator loop serializes on FMA latency).
#[inline]
fn dist2_sq_scalar<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc0 = T::ZERO;
    let mut acc1 = T::ZERO;
    let mut acc2 = T::ZERO;
    let mut acc3 = T::ZERO;
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        let d0 = xs[0] - ys[0];
        let d1 = xs[1] - ys[1];
        let d2 = xs[2] - ys[2];
        let d3 = xs[3] - ys[3];
        acc0 = d0.mul_add(d0, acc0);
        acc1 = d1.mul_add(d1, acc1);
        acc2 = d2.mul_add(d2, acc2);
        acc3 = d3.mul_add(d3, acc3);
    }
    let mut tail = T::ZERO;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        let d = a - b;
        tail = d.mul_add(d, tail);
    }
    ((acc0 + acc1) + (acc2 + acc3)) + tail
}

/// `y += alpha * x` (SIMD-dispatched for `f64`).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if let Some(xf) = simd::as_f64(x) {
        if let Some(yf) = simd::as_f64_mut(y) {
            simd::active().axpy(alpha.to_f64(), xf, yf);
            return;
        }
    }
    axpy_scalar(alpha, x, y)
}

/// Portable `axpy` body, unrolled four-wide so the independent element
/// updates issue as four parallel FMA streams.
#[inline]
fn axpy_scalar<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact_mut(4);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        ys[0] = xs[0].mul_add(alpha, ys[0]);
        ys[1] = xs[1].mul_add(alpha, ys[1]);
        ys[2] = xs[2].mul_add(alpha, ys[2]);
        ys[3] = xs[3].mul_add(alpha, ys[3]);
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean length and returns the original norm.
///
/// A zero vector is left untouched and `0` is returned; callers (e.g. the
/// MAXIMUS query path) treat zero-norm users as "any answer is maximal".
#[inline]
pub fn normalize<T: Scalar>(x: &mut [T]) -> T {
    let n = norm2(x);
    if n > T::ZERO {
        let inv = T::ONE / n;
        scale(inv, x);
    }
    n
}

/// The cosine of the angle between `x` and `y`, clamped to `[-1, 1]`.
///
/// Returns `0` when either vector has zero norm (orthogonal by convention).
#[inline]
pub fn cosine<T: Scalar>(x: &[T], y: &[T]) -> T {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx == T::ZERO || ny == T::ZERO {
        return T::ZERO;
    }
    let c = dot(x, y) / (nx * ny);
    c.max_val(-T::ONE).min_val(T::ONE)
}

/// The angle in radians between `x` and `y` (`acos` of [`cosine`]).
#[inline]
pub fn angle<T: Scalar>(x: &[T], y: &[T]) -> T {
    cosine(x, y).acos_clamped()
}

/// Suffix norms: `out[j] = ‖x[j..]‖` for every `j`, plus `out[len] = 0`.
///
/// Both LEMP's incremental pruning and FEXIPRO's partial inner products need
/// the norm of the *remaining* coordinates at a checkpoint; computing the
/// running sum backwards gives all of them in one pass. For `f64` the
/// sum-of-squares scan dispatches to the active SIMD kernel; its block
/// re-association is covered by the bound-inflation epsilon at every
/// pruning call site (see [`crate::simd`]).
pub fn suffix_norms<T: Scalar>(x: &[T]) -> Vec<T> {
    let mut out = vec![T::ZERO; x.len() + 1];
    if let (Some(xf), Some(of)) = (simd::as_f64(x), simd::as_f64_mut(&mut out)) {
        simd::active().suffix_sumsq(xf, of);
        for v in &mut out {
            *v = v.sqrt();
        }
        return out;
    }
    if let (Some(xf), Some(of)) = (simd::as_f32(x), simd::as_f32_mut(&mut out)) {
        simd::active().suffix_sumsq_f32(xf, of);
        for v in &mut out {
            *v = v.sqrt();
        }
        return out;
    }
    suffix_sumsq_scalar(x, &mut out);
    for v in &mut out {
        *v = v.sqrt();
    }
    out
}

/// Portable suffix sum-of-squares body: one backward FMA carry chain.
#[inline]
fn suffix_sumsq_scalar<T: Scalar>(x: &[T], out: &mut [T]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    out[x.len()] = T::ZERO;
    let mut acc = T::ZERO;
    for j in (0..x.len()).rev() {
        acc = x[j].mul_add(x[j], acc);
        out[j] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miri-targeted: drives every TypeId-guarded slice reinterpretation
    /// in `simd/mod.rs` directly — the match arms (`T == f64`/`f32`), the
    /// `None` arms, and writes through the `_mut` casts — so the Miri CI
    /// leg checks the pointer casts under strict provenance even though
    /// it cannot execute the vector intrinsics behind them.
    #[test]
    fn typeid_guarded_reinterprets_round_trip_under_miri() {
        use crate::blocking::{MR, NR};

        let xs64 = [1.0f64, -2.0, 3.5];
        let got = simd::as_f64(&xs64).expect("T == f64 must reinterpret");
        assert_eq!(got, &xs64[..]);
        assert!(simd::as_f32(&xs64).is_none(), "f64 is not f32");

        let xs32 = [0.5f32, -4.0];
        let got = simd::as_f32(&xs32).expect("T == f32 must reinterpret");
        assert_eq!(got, &xs32[..]);
        assert!(simd::as_f64(&xs32).is_none(), "f32 is not f64");

        let mut ys64 = [0.0f64; 4];
        simd::as_f64_mut(&mut ys64).expect("mutable f64 cast")[2] = 9.0;
        assert_eq!(ys64[2], 9.0);
        let mut ys32 = [0.0f32; 4];
        simd::as_f32_mut(&mut ys32).expect("mutable f32 cast")[1] = 7.0;
        assert_eq!(ys32[1], 7.0);
        assert!(simd::as_f64_mut(&mut ys32).is_none());
        assert!(simd::as_f32_mut(&mut ys64).is_none());

        let mut acc64 = [[0.0f64; NR]; MR];
        simd::acc_as_f64_mut(&mut acc64).expect("f64 tile cast")[MR - 1][NR - 1] = 1.5;
        assert_eq!(acc64[MR - 1][NR - 1], 1.5);
        assert!(simd::acc_as_f32_mut(&mut acc64).is_none());
        let mut acc32 = [[0.0f32; NR]; MR];
        simd::acc_as_f32_mut(&mut acc32).expect("f32 tile cast")[0][0] = 2.5;
        assert_eq!(acc32[0][0], 2.5);
        assert!(simd::acc_as_f64_mut(&mut acc32).is_none());
    }

    #[test]
    fn dot_matches_naive_all_lengths() {
        // Cover the unrolled body plus every remainder size.
        for len in 0..24usize {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) * 0.5 - 2.0).collect();
            let y: Vec<f64> = (0..len).map(|i| 1.0 - (i as f64) * 0.25).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!(
                (dot(&x, &y) - naive).abs() < 1e-10,
                "len {len}: {} vs {naive}",
                dot(&x, &y)
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0_f64], &[1.0, 2.0]);
    }

    #[test]
    fn norms_and_distances() {
        let x = [3.0_f64, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-12);
        assert!((norm2_sq(&x) - 25.0).abs() < 1e-12);
        let y = [0.0_f64, 0.0];
        assert!((dist2_sq(&x, &y) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0_f64, 2.0, 3.0];
        let mut y = [10.0_f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0, 18.0]);
    }

    #[test]
    fn normalize_unit_length_and_zero_vector() {
        let mut x = [3.0_f64, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);

        let mut z = [0.0_f64, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_and_angle_known_values() {
        let x = [1.0_f64, 0.0];
        let y = [0.0_f64, 1.0];
        assert!(cosine(&x, &y).abs() < 1e-12);
        assert!((angle(&x, &y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-12);
        assert_eq!(angle(&x, &x), 0.0);
        let z = [0.0_f64, 0.0];
        assert_eq!(cosine(&x, &z), 0.0);
    }

    #[test]
    fn cosine_never_escapes_unit_interval() {
        // Nearly parallel vectors whose raw cosine exceeds 1 by rounding.
        let x = [1e8_f64, 1.0, 1e-8];
        let c = cosine(&x, &x);
        assert!((-1.0..=1.0).contains(&c));
        assert_eq!(angle(&x, &x), 0.0);
    }

    #[test]
    fn suffix_norms_match_direct_computation() {
        let x = [1.0_f64, -2.0, 2.0, 0.5];
        let s = suffix_norms(&x);
        assert_eq!(s.len(), 5);
        for j in 0..=4 {
            let direct = norm2(&x[j..]);
            assert!((s[j] - direct).abs() < 1e-12, "j={j}");
        }
        assert_eq!(s[4], 0.0);
    }

    #[test]
    fn f32_kernels_work() {
        let x = [1.0_f32, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0_f32, 4.0, 3.0, 2.0, 1.0];
        assert!((dot(&x, &y) - 35.0).abs() < 1e-5);
        assert!((norm2(&[3.0_f32, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sumsq_reassoc_bound_dominates_observed_kernel_disagreement() {
        // The documented bound must cover the real deviation between the
        // serial scalar scan and the block-re-associated SIMD scan (and
        // leave room — it is a worst-case bound, not a fit).
        let kernels = [
            crate::simd::Kernel::scalar(),
            crate::simd::Kernel::best(), // scalar again on plain hosts; fine
        ];
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
        };
        for len in [1usize, 4, 17, 128, 1000] {
            let x: Vec<f64> = (0..len).map(|_| next()).collect();
            let mut reference = vec![0.0; len + 1];
            kernels[0].suffix_sumsq(&x, &mut reference);
            let mut other = vec![0.0; len + 1];
            kernels[1].suffix_sumsq(&x, &mut other);
            for j in 0..len {
                let bound = sumsq_reassoc_bound(len - j) * reference[j].abs();
                assert!(
                    (reference[j] - other[j]).abs() <= bound.max(f64::MIN_POSITIVE),
                    "len {len} j {j}"
                );
            }
        }
        // Shape sanity: monotone in n, tiny at realistic factor counts, and
        // dominated by LEMP's 1e-10 inflation far beyond any model width.
        assert!(sumsq_reassoc_bound(64) < sumsq_reassoc_bound(4096));
        assert!(sumsq_reassoc_bound(4096) < 1e-12);
        assert!(sumsq_reassoc_bound(100_000) < 1e-10);
    }

    #[test]
    fn screen_envelope_is_conservative_on_adversarial_dots() {
        // Near-cancelling vectors maximize the relative damage of f32
        // rounding; the envelope must still contain the exact score.
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for f in [1usize, 8, 50, 200, 1024] {
            for trial in 0..20 {
                let x: Vec<f64> = (0..f).map(|_| next()).collect();
                // Half the trials use a near-negated copy so the exact dot
                // nearly cancels while the norms stay O(√f).
                let y: Vec<f64> = if trial % 2 == 0 {
                    (0..f).map(|_| next()).collect()
                } else {
                    x.iter().map(|&v| -v + next() * 1e-4).collect()
                };
                let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
                let y32: Vec<f32> = y.iter().map(|&v| v as f32).collect();
                let exact: f64 = dot_gemm_ordered(&x, &y);
                let approx = crate::simd::active().dot_f32(&x32, &y32) as f64;
                let env = f32_screen_envelope(f, norm2(&x), norm2(&y));
                assert!(
                    (approx - exact).abs() <= env,
                    "f {f} trial {trial}: |{approx} - {exact}| > {env}"
                );
            }
        }
        // Degenerate inputs: zero norms still produce a usable (positive)
        // envelope via the absolute subnormal term.
        assert!(f32_screen_envelope(16, 0.0, 0.0) > 0.0);
    }

    #[test]
    fn dot_gemm_ordered_reproduces_gemm_elements_bit_for_bit() {
        use crate::{gemm_nt, Matrix};
        for (m, n, f) in [(23, 37, 11), (5, 300, 50), (3, 7, 1), (4, 9, 257)] {
            let a =
                Matrix::<f64>::from_fn(m, f, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.137 - 0.5);
            let b =
                Matrix::<f64>::from_fn(n, f, |r, c| ((r * 17 + c * 3) % 11) as f64 * 0.211 - 0.7);
            let big = gemm_nt(&a, &b);
            for u in 0..m {
                for i in 0..n {
                    assert_eq!(
                        dot_gemm_ordered(a.row(u), b.row(i)),
                        big.get(u, i),
                        "({m},{n},{f}) element ({u},{i})"
                    );
                }
            }
        }
    }
}
