//! Cholesky factorization and SPD solves.
//!
//! The alternating-least-squares trainer in `mips-data` solves one
//! `f × f` symmetric positive-definite normal-equation system per user and
//! per item each sweep (`(Σ iᵢiᵢᵀ + λI) u = Σ r·iᵢ`). With `f ≤ a few
//! hundred`, a dense Cholesky factorization is the right tool: `O(f³/3)`
//! flops, unconditionally stable for SPD inputs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky<T> {
    l: Matrix<T>,
}

/// Factorizes a symmetric positive-definite matrix.
///
/// Only the upper triangle of `a` is read (the matrix is assumed
/// symmetric). Returns an error for non-square, non-finite, or non-positive
/// definite input (detected by a non-positive pivot).
pub fn cholesky<T: Scalar>(a: &Matrix<T>) -> Result<Cholesky<T>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "cholesky",
            expected: n,
            actual: a.cols(),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty {
            context: "cholesky",
        });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite {
            context: "cholesky",
        });
    }

    let mut l = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        // Diagonal: l_jj = sqrt(a_jj − Σ_{k<j} l_jk²).
        let mut diag = a.get(j.min(j), j);
        for k in 0..j {
            let v = l.get(j, k);
            diag -= v * v;
        }
        // NaN-aware: a NaN pivot must fail here, so compare via `<=`'s
        // negation semantics explicitly.
        let positive = diag.partial_cmp(&T::ZERO) == Some(core::cmp::Ordering::Greater);
        if !positive || !diag.is_finite() {
            return Err(LinalgError::NoConvergence {
                context: "cholesky (matrix not positive definite)",
                iterations: j,
            });
        }
        let ljj = diag.sqrt();
        l.set(j, j, ljj);
        // Column below the diagonal.
        for i in (j + 1)..n {
            // Read A from the upper triangle: a_ij with i > j is a_ji there.
            let mut sum = a.get(j, i);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, sum / ljj);
        }
    }
    Ok(Cholesky { l })
}

impl<T: Scalar> Cholesky<T> {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix<T> {
        &self.l
    }

    /// Solves `A·x = b` via forward and back substitution.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Cholesky::solve: dimension mismatch");
        // Forward: L·y = b.
        let mut y = vec![T::ZERO; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = self.l.row(i);
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= row[k] * yk;
            }
            y[i] = sum / row[i];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![T::ZERO; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul_nn, matvec};

    fn spd_matrix(n: usize, seed: u64) -> Matrix<f64> {
        // B·Bᵀ + n·I is comfortably SPD.
        let mut state = seed | 1;
        let b = Matrix::<f64>::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        });
        let mut a = matmul_nn(&b, &b.transpose());
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        for n in [1usize, 2, 5, 16] {
            let a = spd_matrix(n, 3 + n as u64);
            let ch = cholesky(&a).unwrap();
            let rec = matmul_nn(ch.factor(), &ch.factor().transpose());
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec.get(i, j) - a.get(i, j)).abs() < 1e-9,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_inverts_matvec() {
        let n = 12;
        let a = spd_matrix(n, 9);
        let ch = cholesky(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 2.0).collect();
        let b = matvec(&a, &x_true);
        let x = ch.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let mut eye = Matrix::<f64>::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        let ch = cholesky(&eye).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(ch.solve(&b), b.to_vec());
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, −1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            cholesky(&rect),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let empty = Matrix::<f64>::zeros(0, 0);
        assert!(matches!(cholesky(&empty), Err(LinalgError::Empty { .. })));
        let mut nan = spd_matrix(3, 1);
        nan.set(0, 1, f64::NAN);
        assert!(matches!(cholesky(&nan), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn f32_cholesky_works() {
        let a64 = spd_matrix(6, 5);
        let a: Matrix<f32> = a64.cast();
        let ch = cholesky(&a).unwrap();
        let b = vec![1.0f32; 6];
        let x = ch.solve(&b);
        let back = matvec(&a, &x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-3);
        }
    }
}
