//! NEON micro-kernels (aarch64, 128-bit, two f64 lanes).
//!
//! NEON with double-precision FMA is a baseline aarch64 feature, so no
//! runtime detection is needed; the `unsafe` here is only the intrinsic
//! calls themselves, with the same in-bounds addressing discipline as the
//! AVX2 kernels (see [`super`] for the full safety contract).
//!
//! Two 2-lane accumulators stand in for AVX2's one 4-lane accumulator:
//! lanes `(0,1)` of the first and `(0,1)` of the second map onto scalar
//! accumulators `0..4`, and the combine tree matches the scalar kernels, so
//! the bit-identity contract of [`super`] holds here too.

use crate::blocking::{MR, NR};
use core::arch::aarch64::*;

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: NEON is baseline on aarch64; reads are in bounds.
    unsafe { dot_inner(x, y) }
}

// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn dot_inner(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n / 4;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    for i in 0..chunks {
        acc01 = vfmaq_f64(acc01, vld1q_f64(xp.add(4 * i)), vld1q_f64(yp.add(4 * i)));
        acc23 = vfmaq_f64(
            acc23,
            vld1q_f64(xp.add(4 * i + 2)),
            vld1q_f64(yp.add(4 * i + 2)),
        );
    }
    let mut tail = 0.0f64;
    for j in 4 * chunks..n {
        tail = (*xp.add(j)).mul_add(*yp.add(j), tail);
    }
    ((vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1))
        + (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1)))
        + tail
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { axpy_inner(alpha, x, y) }
}

// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn axpy_inner(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let chunks = n / 2;
    let a = vdupq_n_f64(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    for i in 0..chunks {
        let yv = vld1q_f64(yp.add(2 * i));
        vst1q_f64(yp.add(2 * i), vfmaq_f64(yv, vld1q_f64(xp.add(2 * i)), a));
    }
    for j in 2 * chunks..n {
        *yp.add(j) = (*xp.add(j)).mul_add(alpha, *yp.add(j));
    }
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dist2_sq_inner(x, y) }
}

// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn dist2_sq_inner(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n / 4;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    for i in 0..chunks {
        let d01 = vsubq_f64(vld1q_f64(xp.add(4 * i)), vld1q_f64(yp.add(4 * i)));
        let d23 = vsubq_f64(vld1q_f64(xp.add(4 * i + 2)), vld1q_f64(yp.add(4 * i + 2)));
        acc01 = vfmaq_f64(acc01, d01, d01);
        acc23 = vfmaq_f64(acc23, d23, d23);
    }
    let mut tail = 0.0f64;
    for j in 4 * chunks..n {
        let d = *xp.add(j) - *yp.add(j);
        tail = d.mul_add(d, tail);
    }
    ((vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1))
        + (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1)))
        + tail
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn suffix_sumsq(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    // SAFETY: as for `dot`.
    unsafe { suffix_sumsq_inner(x, out) }
}

// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn suffix_sumsq_inner(x: &[f64], out: &mut [f64]) {
    let n = x.len();
    let op = out.as_mut_ptr();
    *op.add(n) = 0.0;
    let rem = n % 2;
    let mut carry = 0.0f64;
    let xp = x.as_ptr();
    let mut block = n;
    while block > rem {
        block -= 2;
        let v = vld1q_f64(xp.add(block));
        let sq = vmulq_f64(v, v);
        let t1 = vgetq_lane_f64(sq, 1) + carry;
        let t0 = vgetq_lane_f64(sq, 0) + t1;
        *op.add(block) = t0;
        *op.add(block + 1) = t1;
        carry = t0;
    }
    if rem == 1 {
        carry = (*xp).mul_add(*xp, carry);
        *op = carry;
    }
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dot_f32_inner(x, y) }
}

/// Single-precision screen dot: two 4-lane accumulators, eight elements per
/// step. No bit-identity promise (see [`super`]'s f32 section) — consumers
/// widen by the screen envelope.
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn dot_f32_inner(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    let chunks = n / 8;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    for i in 0..chunks {
        acc0 = vfmaq_f32(acc0, vld1q_f32(xp.add(8 * i)), vld1q_f32(yp.add(8 * i)));
        acc1 = vfmaq_f32(
            acc1,
            vld1q_f32(xp.add(8 * i + 4)),
            vld1q_f32(yp.add(8 * i + 4)),
        );
    }
    let mut tail = 0.0f32;
    for j in 8 * chunks..n {
        tail = (*xp.add(j)).mul_add(*yp.add(j), tail);
    }
    (vaddvq_f32(acc0) + vaddvq_f32(acc1)) + tail
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn suffix_sumsq_f32(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    // SAFETY: as for `dot`.
    unsafe { suffix_sumsq_f32_inner(x, out) }
}

/// Backward f32 suffix scan, four squares per vector step (same carry-chain
/// structure and tolerance caveats as the f64 scan).
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn suffix_sumsq_f32_inner(x: &[f32], out: &mut [f32]) {
    let n = x.len();
    let op = out.as_mut_ptr();
    *op.add(n) = 0.0;
    let rem = n % 4;
    let mut carry = 0.0f32;
    let xp = x.as_ptr();
    let mut block = n;
    while block > rem {
        block -= 4;
        let v = vld1q_f32(xp.add(block));
        let sq = vmulq_f32(v, v);
        let t3 = vgetq_lane_f32(sq, 3) + carry;
        let t2 = vgetq_lane_f32(sq, 2) + t3;
        let t1 = vgetq_lane_f32(sq, 1) + t2;
        let t0 = vgetq_lane_f32(sq, 0) + t1;
        *op.add(block) = t0;
        *op.add(block + 1) = t1;
        *op.add(block + 2) = t2;
        *op.add(block + 3) = t3;
        carry = t0;
    }
    let mut j = rem;
    while j > 0 {
        j -= 1;
        carry = (*xp.add(j)).mul_add(*xp.add(j), carry);
        *op.add(j) = carry;
    }
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn micro_4x8_f32(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert_eq!(a_panel.len() / MR, b_panel.len() / NR);
    // SAFETY: as for `dot`.
    unsafe { micro_4x8_f32_inner(a_panel, b_panel, acc) }
}

/// The f32 `4×8` tile as eight 4-lane accumulators (4 rows × 2 quads); each
/// `(i, j)` lane is one sequential FMA chain over the packed depth.
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn micro_4x8_f32_inner(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let depth = a_panel.len() / MR;
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();

    let mut c: [[float32x4_t; 2]; MR] = [[vdupq_n_f32(0.0); 2]; MR];
    for (i, row) in c.iter_mut().enumerate() {
        row[0] = vld1q_f32(acc[i].as_ptr());
        row[1] = vld1q_f32(acc[i].as_ptr().add(4));
    }

    for p in 0..depth {
        let b0 = vld1q_f32(bp.add(p * NR));
        let b1 = vld1q_f32(bp.add(p * NR + 4));
        let arow = ap.add(p * MR);
        for (i, row) in c.iter_mut().enumerate() {
            let ai = vdupq_n_f32(*arow.add(i));
            row[0] = vfmaq_f32(row[0], ai, b0);
            row[1] = vfmaq_f32(row[1], ai, b1);
        }
    }

    for (i, row) in c.iter().enumerate() {
        vst1q_f32(acc[i].as_mut_ptr(), row[0]);
        vst1q_f32(acc[i].as_mut_ptr().add(4), row[1]);
    }
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dot_i8_inner(x, y) }
}

/// Int8 widening dot: 16 codes per step via `smull` (i8×i8→i16, exact —
/// products are ≤ 127² and fit i16) and `sadalp` (pairwise add-accumulate
/// into i32 lanes). Every add happens in i32 after exact i16 products, so
/// the result is bit-identical to the scalar kernel; the per-lane bound at
/// the documented length cap (`quant::I8_DOT_MAX_LEN`) stays far inside
/// `i32`.
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn dot_i8_inner(x: &[i8], y: &[i8]) -> i32 {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc = vdupq_n_s32(0);
    let mut i = 0usize;
    while i + 16 <= n {
        let xv = vld1q_s8(xp.add(i));
        let yv = vld1q_s8(yp.add(i));
        let lo = vmull_s8(vget_low_s8(xv), vget_low_s8(yv));
        let hi = vmull_s8(vget_high_s8(xv), vget_high_s8(yv));
        acc = vpadalq_s16(acc, lo);
        acc = vpadalq_s16(acc, hi);
        i += 16;
    }
    // 8-element sub-chunk (64-bit load) keeps the scalar tail under 8.
    if i + 8 <= n {
        acc = vpadalq_s16(acc, vmull_s8(vld1_s8(xp.add(i)), vld1_s8(yp.add(i))));
        i += 8;
    }
    let mut sum = vaddvq_s32(acc);
    while i < n {
        sum += *xp.add(i) as i32 * *yp.add(i) as i32;
        i += 1;
    }
    sum
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn dot_i8_quad(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    // SAFETY: as for `dot`.
    unsafe { dot_i8_quad_inner(x, ys) }
}

/// Four int8 widening dots sharing the `x` loads — four independent
/// accumulators keep the multiply chains pipelined. Exactness as for
/// `dot_i8`.
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn dot_i8_quad_inner(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = [
        ys[0].as_ptr(),
        ys[1].as_ptr(),
        ys[2].as_ptr(),
        ys[3].as_ptr(),
    ];
    let mut acc = [vdupq_n_s32(0); 4];
    let mut i = 0usize;
    while i + 16 <= n {
        let xv = vld1q_s8(xp.add(i));
        let xlo = vget_low_s8(xv);
        let xhi = vget_high_s8(xv);
        for q in 0..4 {
            let yv = vld1q_s8(yp[q].add(i));
            acc[q] = vpadalq_s16(acc[q], vmull_s8(xlo, vget_low_s8(yv)));
            acc[q] = vpadalq_s16(acc[q], vmull_s8(xhi, vget_high_s8(yv)));
        }
        i += 16;
    }
    // 8-element sub-chunk (64-bit loads) keeps the scalar tail under 8.
    if i + 8 <= n {
        let xv = vld1_s8(xp.add(i));
        for (q, &p) in yp.iter().enumerate() {
            acc[q] = vpadalq_s16(acc[q], vmull_s8(xv, vld1_s8(p.add(i))));
        }
        i += 8;
    }
    let mut out = [0i32; 4];
    for (q, &p) in yp.iter().enumerate() {
        out[q] = vaddvq_s32(acc[q]);
        for j in i..n {
            out[q] += *xp.add(j) as i32 * *p.add(j) as i32;
        }
    }
    out
}

/// Safe wrapper; soundness per the module-level contract.
pub(super) fn micro_4x8(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    debug_assert_eq!(a_panel.len() / MR, b_panel.len() / NR);
    // SAFETY: as for `dot`.
    unsafe { micro_4x8_inner(a_panel, b_panel, acc) }
}

/// The `4×8` tile as 16 two-lane accumulators; each `(i, j)` lane is one
/// sequential FMA chain over the packed depth, matching the scalar kernel.
// SAFETY contract: NEON is baseline on aarch64, so the caller's only
// obligation is the safe wrapper's length invariant — every pointer
// read and write below is in bounds exactly when it holds.
#[target_feature(enable = "neon")]
unsafe fn micro_4x8_inner(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    let depth = a_panel.len() / MR;
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();

    let mut c: [[float64x2_t; 4]; MR] = [[vdupq_n_f64(0.0); 4]; MR];
    for (i, row) in c.iter_mut().enumerate() {
        for (q, v) in row.iter_mut().enumerate() {
            *v = vld1q_f64(acc[i].as_ptr().add(2 * q));
        }
    }

    for p in 0..depth {
        let b0 = vld1q_f64(bp.add(p * NR));
        let b1 = vld1q_f64(bp.add(p * NR + 2));
        let b2 = vld1q_f64(bp.add(p * NR + 4));
        let b3 = vld1q_f64(bp.add(p * NR + 6));
        let arow = ap.add(p * MR);
        for (i, row) in c.iter_mut().enumerate() {
            let ai = vdupq_n_f64(*arow.add(i));
            row[0] = vfmaq_f64(row[0], ai, b0);
            row[1] = vfmaq_f64(row[1], ai, b1);
            row[2] = vfmaq_f64(row[2], ai, b2);
            row[3] = vfmaq_f64(row[3], ai, b3);
        }
    }

    for (i, row) in c.iter().enumerate() {
        for (q, v) in row.iter().enumerate() {
            vst1q_f64(acc[i].as_mut_ptr().add(2 * q), *v);
        }
    }
}
