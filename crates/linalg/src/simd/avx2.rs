//! AVX2 + FMA micro-kernels (x86-64, 256-bit, four f64 lanes).
//!
//! Each public item is a *safe* wrapper whose soundness rests on the
//! constructor contract in [`super`]: these wrappers are only ever reachable
//! through a [`super::Kernel`] built by `Kernel::avx2()`, which verified
//! `avx2` and `fma` via `is_x86_feature_detected!`. The inner `unsafe fn`s
//! carry `#[target_feature]` and do nothing unsafe beyond in-bounds pointer
//! addressing derived from slice lengths (trip counts are computed from
//! `len / lanes`, tails handled by scalar remainder loops).
//!
//! The accumulation orders deliberately mirror the scalar kernels so results
//! are bit-identical — see the bit-identity contract in [`super`].

use crate::blocking::{MR, NR};
use core::arch::x86_64::*;

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: reachable only via a Kernel constructed after feature
    // detection; the inner kernel reads in bounds only.
    unsafe { dot_inner(x, y) }
}

// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_inner(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n / 4;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    // One vector accumulator: lane l sums x[4i+l]·y[4i+l], exactly the four
    // independent scalar accumulators of `kernels::dot`.
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(xp.add(4 * i));
        let yv = _mm256_loadu_pd(yp.add(4 * i));
        acc = _mm256_fmadd_pd(xv, yv, acc);
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    for j in 4 * chunks..n {
        tail = (*xp.add(j)).mul_add(*yp.add(j), tail);
    }
    // Same combine tree as the scalar kernel: ((l0+l1)+(l2+l3)) + tail.
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dot_seq4(x: &[f64], ys: [&[f64]; 4]) -> [f64; 4] {
    // SAFETY: as for `dot`.
    unsafe { dot_seq4_inner(x, ys) }
}

/// Four sequential-chain (GEMM-ordered) dots. The body is the scalar
/// kernel's, written out here so that under `target_feature(fma)` every
/// `mul_add` lowers to an inline `vfmadd` instead of the baseline
/// target's libm call — same bits, hardware speed.
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_seq4_inner(x: &[f64], ys: [&[f64]; 4]) -> [f64; 4] {
    let [y0, y1, y2, y3] = ys;
    let mut acc = [0.0f64; 4];
    for (j, &u) in x.iter().enumerate() {
        acc[0] = u.mul_add(y0[j], acc[0]);
        acc[1] = u.mul_add(y1[j], acc[1]);
        acc[2] = u.mul_add(y2[j], acc[2]);
        acc[3] = u.mul_add(y3[j], acc[3]);
    }
    acc
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { axpy_inner(alpha, x, y) }
}

// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_inner(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let chunks = n / 4;
    let a = _mm256_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(xp.add(4 * i));
        let yv = _mm256_loadu_pd(yp.add(4 * i));
        _mm256_storeu_pd(yp.add(4 * i), _mm256_fmadd_pd(xv, a, yv));
    }
    for j in 4 * chunks..n {
        *yp.add(j) = (*xp.add(j)).mul_add(alpha, *yp.add(j));
    }
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dist2_sq_inner(x, y) }
}

// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn dist2_sq_inner(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n / 4;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let d = _mm256_sub_pd(
            _mm256_loadu_pd(xp.add(4 * i)),
            _mm256_loadu_pd(yp.add(4 * i)),
        );
        acc = _mm256_fmadd_pd(d, d, acc);
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    for j in 4 * chunks..n {
        let d = *xp.add(j) - *yp.add(j);
        tail = d.mul_add(d, tail);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn suffix_sumsq(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    // SAFETY: as for `dot`.
    unsafe { suffix_sumsq_inner(x, out) }
}

/// Backward suffix scan with vectorized squaring.
///
/// The carry chain is inherently serial; the vector unit only computes the
/// four squares of each block at once. Within-block sums are re-associated
/// relative to the scalar scan (square-then-add instead of a fused chain),
/// which is the documented exception to the bit-identity contract.
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn suffix_sumsq_inner(x: &[f64], out: &mut [f64]) {
    let n = x.len();
    let op = out.as_mut_ptr();
    *op.add(n) = 0.0;
    let rem = n % 4;
    let mut carry = 0.0f64;
    let xp = x.as_ptr();
    let mut block = n;
    while block > rem {
        block -= 4;
        let v = _mm256_loadu_pd(xp.add(block));
        let mut sq = [0.0f64; 4];
        _mm256_storeu_pd(sq.as_mut_ptr(), _mm256_mul_pd(v, v));
        let t3 = sq[3] + carry;
        let t2 = sq[2] + t3;
        let t1 = sq[1] + t2;
        let t0 = sq[0] + t1;
        *op.add(block) = t0;
        *op.add(block + 1) = t1;
        *op.add(block + 2) = t2;
        *op.add(block + 3) = t3;
        carry = t0;
    }
    let mut j = rem;
    while j > 0 {
        j -= 1;
        carry = (*xp.add(j)).mul_add(*xp.add(j), carry);
        *op.add(j) = carry;
    }
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dot_f32_inner(x, y) }
}

/// Single-precision screen dot: one 8-lane accumulator. No bit-identity
/// promise (the scalar fallback uses four accumulators) — consumers widen
/// by the screen envelope, which covers any accumulation order.
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f32_inner(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    let chunks = n / 8;
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc = _mm256_setzero_ps();
    for i in 0..chunks {
        let xv = _mm256_loadu_ps(xp.add(8 * i));
        let yv = _mm256_loadu_ps(yp.add(8 * i));
        acc = _mm256_fmadd_ps(xv, yv, acc);
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f32;
    for j in 8 * chunks..n {
        tail = (*xp.add(j)).mul_add(*yp.add(j), tail);
    }
    (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])))
        + tail
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn suffix_sumsq_f32(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    // SAFETY: as for `dot`.
    unsafe { suffix_sumsq_f32_inner(x, out) }
}

/// Backward f32 suffix scan, eight squares per vector step (see
/// `suffix_sumsq` for the carry-chain structure; same tolerance caveats as
/// every f32 kernel).
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn suffix_sumsq_f32_inner(x: &[f32], out: &mut [f32]) {
    let n = x.len();
    let op = out.as_mut_ptr();
    *op.add(n) = 0.0;
    let rem = n % 8;
    let mut carry = 0.0f32;
    let xp = x.as_ptr();
    let mut block = n;
    while block > rem {
        block -= 8;
        let v = _mm256_loadu_ps(xp.add(block));
        let mut sq = [0.0f32; 8];
        _mm256_storeu_ps(sq.as_mut_ptr(), _mm256_mul_ps(v, v));
        let mut t = carry;
        for lane in (0..8).rev() {
            t += sq[lane];
            *op.add(block + lane) = t;
        }
        carry = t;
    }
    let mut j = rem;
    while j > 0 {
        j -= 1;
        carry = (*xp.add(j)).mul_add(*xp.add(j), carry);
        *op.add(j) = carry;
    }
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn micro_4x8_f32(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert_eq!(a_panel.len() / MR, b_panel.len() / NR);
    // SAFETY: as for `dot`.
    unsafe { micro_4x8_f32_inner(a_panel, b_panel, acc) }
}

/// The f32 `4×8` register tile: one 8-lane vector per row (NR = 8 exactly
/// fills a YMM of f32), one B load and four A broadcasts per depth step.
/// Each `(i, j)` lane is a single sequential FMA chain over the packed
/// depth, like the f64 tile.
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_4x8_f32_inner(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let depth = a_panel.len() / MR;
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();

    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());

    for p in 0..depth {
        let b = _mm256_loadu_ps(bp.add(p * NR));
        let arow = ap.add(p * MR);
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(*arow), b, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(1)), b, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(2)), b, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(3)), b, c3);
    }

    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    // SAFETY: as for `dot`.
    unsafe { dot_i8_inner(x, y) }
}

/// Int8 widening dot: each 32-byte block is sign-extended to i16 halves
/// (`vpmovsxbw`) and folded by `vpmaddwd` into eight i32 lanes — 32
/// products per two madds. The remainder is peeled vector-first: one
/// 16-element sub-chunk (full 128-bit load, one madd) and one 8-element
/// sub-chunk (`vmovq` zero-extends the upper half, whose lanes then
/// contribute exact zero products), leaving at most 7 scalar elements —
/// this matters at recommender widths like f = 50, where a 32-wide loop
/// alone would push 18 of 50 coordinates through the scalar tail.
/// Per-lane worst case at the documented length cap
/// (`quant::I8_DOT_MAX_LEN`) is `(f/16 + 2)·2·127² < 2³¹`, so the i32
/// lanes cannot overflow; every add is an exact integer add, making the
/// result bit-identical to the scalar kernel under every input.
// SAFETY contract: the caller must guarantee AVX2 is available (upheld by
// constructing the `Kernel` only after feature detection) and pass slices
// satisfying the safe wrapper's length invariants — every pointer read
// below is in bounds exactly when they hold (each sub-chunk load is
// guarded by `i + width <= n`).
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_inner(x: &[i8], y: &[i8]) -> i32 {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= n {
        let xv = _mm256_loadu_si256(xp.add(i) as *const __m256i);
        let yv = _mm256_loadu_si256(yp.add(i) as *const __m256i);
        let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
        let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
        let ylo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv));
        let yhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, ylo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, yhi));
        i += 32;
    }
    if i + 16 <= n {
        let xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(xp.add(i) as *const __m128i));
        let yv = _mm256_cvtepi8_epi16(_mm_loadu_si128(yp.add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
        i += 16;
    }
    if i + 8 <= n {
        let xv = _mm256_cvtepi8_epi16(_mm_loadl_epi64(xp.add(i) as *const __m128i));
        let yv = _mm256_cvtepi8_epi16(_mm_loadl_epi64(yp.add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
        i += 8;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum += *xp.add(i) as i32 * *yp.add(i) as i32;
        i += 1;
    }
    sum
}

/// Horizontal i32 sum of the eight lanes — fold the halves, then two
/// pairwise hadds. Exact: integer addition commutes and associates.
// SAFETY contract: AVX2 available, per the kernel constructor contract.
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let s = _mm_hadd_epi32(s, s);
    let s = _mm_hadd_epi32(s, s);
    _mm_cvtsi128_si32(s)
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn dot_i8_quad(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    // SAFETY: as for `dot`.
    unsafe { dot_i8_quad_inner(x, ys) }
}

/// Four int8 widening dots sharing the `x` loads: four independent
/// accumulator registers keep the madd chains pipelined the way
/// `dot_seq4` does for f64. Remainder handling and overflow bound as for
/// `dot_i8` (16- then 8-element sub-chunks, ≤ 7 scalar elements); the
/// four horizontal sums are produced together by two levels of
/// `vphaddd` plus one cross-half fold. Exactness as for `dot_i8` —
/// integer adds, bit-identical to the scalar kernel.
// SAFETY contract: the caller must guarantee AVX2 is available (upheld by
// constructing the `Kernel` only after feature detection) and pass slices
// satisfying the safe wrapper's length invariants — every pointer read
// below is in bounds exactly when they hold (each sub-chunk load is
// guarded by `i + width <= n`).
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_quad_inner(x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
    let n = x.len();
    let xp = x.as_ptr();
    let yp = [
        ys[0].as_ptr(),
        ys[1].as_ptr(),
        ys[2].as_ptr(),
        ys[3].as_ptr(),
    ];
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut i = 0usize;
    while i + 32 <= n {
        let xv = _mm256_loadu_si256(xp.add(i) as *const __m256i);
        let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
        let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
        for q in 0..4 {
            let yv = _mm256_loadu_si256(yp[q].add(i) as *const __m256i);
            let ylo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv));
            let yhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1));
            acc[q] = _mm256_add_epi32(acc[q], _mm256_madd_epi16(xlo, ylo));
            acc[q] = _mm256_add_epi32(acc[q], _mm256_madd_epi16(xhi, yhi));
        }
        i += 32;
    }
    if i + 16 <= n {
        let xv = _mm256_cvtepi8_epi16(_mm_loadu_si128(xp.add(i) as *const __m128i));
        for (q, &p) in yp.iter().enumerate() {
            let yv = _mm256_cvtepi8_epi16(_mm_loadu_si128(p.add(i) as *const __m128i));
            acc[q] = _mm256_add_epi32(acc[q], _mm256_madd_epi16(xv, yv));
        }
        i += 16;
    }
    if i + 8 <= n {
        let xv = _mm256_cvtepi8_epi16(_mm_loadl_epi64(xp.add(i) as *const __m128i));
        for (q, &p) in yp.iter().enumerate() {
            let yv = _mm256_cvtepi8_epi16(_mm_loadl_epi64(p.add(i) as *const __m128i));
            acc[q] = _mm256_add_epi32(acc[q], _mm256_madd_epi16(xv, yv));
        }
        i += 8;
    }
    // hadd(a, b) interleaves pairwise sums of a and b within each 128-bit
    // half; two levels leave [A B C D | A' B' C' D'] where X + X' is the
    // lane sum of acc[X] — one cross-half add finishes all four at once.
    let h01 = _mm256_hadd_epi32(acc[0], acc[1]);
    let h23 = _mm256_hadd_epi32(acc[2], acc[3]);
    let h = _mm256_hadd_epi32(h01, h23);
    let s = _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256(h, 1));
    let mut out = [0i32; 4];
    _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, s);
    for (q, &p) in yp.iter().enumerate() {
        for j in i..n {
            out[q] += *xp.add(j) as i32 * *p.add(j) as i32;
        }
    }
    out
}

/// Safe wrapper; see module docs for the soundness argument.
pub(super) fn micro_4x8(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    debug_assert_eq!(a_panel.len() / MR, b_panel.len() / NR);
    // SAFETY: as for `dot`.
    unsafe { micro_4x8_inner(a_panel, b_panel, acc) }
}

/// The `4×8` register tile: 8 vector accumulators (4 rows × 2 vectors of 4
/// columns), two B loads and four A broadcasts per depth step, 8 independent
/// FMAs in flight. Each `(i, j)` lane is a single sequential FMA chain over
/// the packed depth — bit-identical to the scalar micro-kernel.
// SAFETY contract: the caller must guarantee AVX2+FMA are available
// (upheld by constructing the `Kernel` only after feature detection)
// and pass slices satisfying the safe wrapper's length invariants —
// every pointer read and write below is in bounds exactly when they
// hold.
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_4x8_inner(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    let depth = a_panel.len() / MR;
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();

    let mut c00 = _mm256_loadu_pd(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_pd(acc[0].as_ptr().add(4));
    let mut c10 = _mm256_loadu_pd(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_pd(acc[1].as_ptr().add(4));
    let mut c20 = _mm256_loadu_pd(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_pd(acc[2].as_ptr().add(4));
    let mut c30 = _mm256_loadu_pd(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_pd(acc[3].as_ptr().add(4));

    for p in 0..depth {
        let b0 = _mm256_loadu_pd(bp.add(p * NR));
        let b1 = _mm256_loadu_pd(bp.add(p * NR + 4));
        let arow = ap.add(p * MR);
        let a0 = _mm256_set1_pd(*arow);
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a0, b1, c01);
        let a1 = _mm256_set1_pd(*arow.add(1));
        c10 = _mm256_fmadd_pd(a1, b0, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let a2 = _mm256_set1_pd(*arow.add(2));
        c20 = _mm256_fmadd_pd(a2, b0, c20);
        c21 = _mm256_fmadd_pd(a2, b1, c21);
        let a3 = _mm256_set1_pd(*arow.add(3));
        c30 = _mm256_fmadd_pd(a3, b0, c30);
        c31 = _mm256_fmadd_pd(a3, b1, c31);
    }

    _mm256_storeu_pd(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_pd(acc[0].as_mut_ptr().add(4), c01);
    _mm256_storeu_pd(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_pd(acc[1].as_mut_ptr().add(4), c11);
    _mm256_storeu_pd(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_pd(acc[2].as_mut_ptr().add(4), c21);
    _mm256_storeu_pd(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_pd(acc[3].as_mut_ptr().add(4), c31);
}
