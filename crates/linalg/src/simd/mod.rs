//! Runtime-dispatched SIMD micro-kernels for the double-precision hot path.
//!
//! The paper's hardware-efficiency argument (§II-B) assumes the brute-force
//! kernels actually reach the machine's FMA throughput. Portable scalar Rust
//! compiled for the baseline `x86-64` target cannot: `f64::mul_add` lowers to
//! a libm call and the autovectorizer never emits YMM FMAs. This module
//! closes that gap with explicit `unsafe` intrinsic kernels selected **once**
//! per process:
//!
//! * `avx2-fma` — 256-bit AVX2 + FMA kernels (the `avx2` module), chosen when
//!   `is_x86_feature_detected!` confirms both features at startup;
//! * `neon` — 128-bit NEON kernels (the `neon` module) on `aarch64` (NEON and
//!   double-precision FMA are baseline features there);
//! * `scalar` — the crate's portable kernels, the guaranteed fallback on
//!   every other target and the reference the SIMD paths are tested against.
//!
//! Selection happens on the first call to [`active`] and is cached for the
//! process lifetime. Set `MIPS_KERNEL=scalar` in the environment to force the
//! portable path (e.g. to measure the SIMD speedup, or to rule the SIMD
//! kernels out when debugging); an unknown or unsupported name falls back to
//! `scalar` rather than faulting. [`Kernel::name`] reports what is actually
//! running.
//!
//! ## Bit-identity contract
//!
//! Every SIMD kernel reproduces the scalar kernel's floating-point result
//! **bit for bit**, not merely within tolerance. This is possible because the
//! scalar kernels already use independent accumulators: a vector register's
//! lanes are mapped one-to-one onto the scalar code's accumulators, every
//! multiply-add uses the (single-rounding) FMA in both paths, and the final
//! reduction uses the same combine tree. Concretely:
//!
//! * [`Kernel::dot`] — lane `l` of the one vector accumulator sums elements
//!   `x[4i+l]·y[4i+l]`, exactly the scalar `dot`'s four accumulators; the
//!   reduction is `((l0+l1)+(l2+l3)) + tail` in both.
//! * [`Kernel::dist2_sq`] — same mapping over `(x-y)²`.
//! * [`Kernel::axpy`] — element-wise, so lane mapping is trivial.
//! * [`Kernel::micro_4x8`] — each `(i, j)` accumulator of the `MR×NR` GEMM
//!   register tile is one vector lane fed by a single sequential FMA chain
//!   over the packed depth, identical to the scalar micro-kernel's loop.
//! * [`Kernel::dot_seq4`] — four scalar sequential FMA chains (the GEMM
//!   per-element order, one chain per item); the arch kernels only ensure
//!   the `mul_add`s compile to inline hardware FMA, and every path's `fma`
//!   is correctly rounded, so all kernel sets agree bit for bit — with each
//!   other *and* with the matching `micro_4x8` output element.
//!
//! The one exception is [`Kernel::suffix_sumsq`]: a suffix scan is a serial
//! carry chain, and the vector version re-associates the within-block sums
//! (squares are computed with a vector multiply instead of being fused into
//! the carry FMA). Its consumers (LEMP / FEXIPRO pruning bounds) inflate
//! every bound by a relative epsilon; [`crate::sumsq_reassoc_bound`] derives
//! the actual re-association bound that inflation must (and does, with orders
//! of magnitude to spare) dominate, so exactness of the *search results* is
//! unaffected.
//!
//! ## Single-precision screen kernels
//!
//! The `*_f32` entries ([`Kernel::dot_f32`], [`Kernel::suffix_sumsq_f32`],
//! [`Kernel::micro_4x8_f32`]) exist for the mixed-precision *screen* path:
//! scan in f32, keep every candidate whose widened bound could still reach
//! the top-k, then rescore survivors in f64. They are deliberately **outside
//! the bit-identity contract** — different kernel sets may associate the f32
//! accumulation differently (8 lanes on AVX2, 2×4 on NEON, 4 scalar chains).
//! That is sound because no f32 value is ever reported: every consumer wraps
//! the result in the error envelope of [`crate::f32_screen_envelope`], which
//! bounds *any* accumulation order, and final scores always come from the
//! exact f64 path.
//!
//! The `fused_exactness` property suite in `mips-topk` exercises both
//! contracts: bit-identical top-k (scores *and* tie-broken id order) between
//! the fused SIMD path and the scalar reference, across shapes that are
//! deliberately not multiples of the tile sizes.
//!
//! ## Int8 screen kernels
//!
//! The `*_i8` entries ([`Kernel::dot_i8`], [`Kernel::dot_i8_quad`]) serve
//! the quantized screen tier beneath the f32 one: item rows are stored as
//! symmetric int8 codes with per-row scales (`mips_data::MirrorI8`), the
//! widening i8×i8→i32 accumulation is **exact** under every association
//! order (`f ≤ `[`crate::quant::I8_DOT_MAX_LEN`] keeps the worst case
//! inside `i32`), and the AVX2 path uses `pmaddwd`-style paired
//! multiply-adds while NEON uses `smull`+`sadalp` widening. Because integer
//! addition is associative, these kernels sit *inside* the bit-identity
//! contract — every set returns the identical `i32` — so the i8 screen's
//! envelope ([`crate::quant::i8_screen_envelope_parts`]) only has to cover
//! quantization error, not accumulation order.
//!
//! ## Safety contract
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (the crate is `deny(unsafe_code)`; this module opts back in). The
//! obligations are local and uniform:
//!
//! * Arch-specific functions are `unsafe fn` + `#[target_feature]`. Their
//!   only precondition is that the CPU supports the enabled features; they
//!   perform no raw-pointer arithmetic beyond in-bounds slice addressing,
//!   which each kernel guards with explicit length math (`chunks`/`len`
//!   derived trip counts, remainder loops for tails).
//! * The safe wrappers stored in a [`Kernel`] may only be constructed by
//!   [`Kernel::avx2`] / [`Kernel::neon`], which return `None` unless the
//!   features were detected (or the target guarantees them). The wrappers
//!   are never exported individually, so a `Kernel` value is a proof that
//!   its function pointers are safe to call on this machine.
//! * Slice casts between `&[T]` and `&[f64]` (used by the generic entry
//!   points in [`crate::kernels`] and [`crate::gemm`]) are guarded by a
//!   `TypeId` equality check, making the transmute a no-op reinterpretation
//!   of the same type. These helpers are intrinsics-free, so the Miri CI
//!   leg executes them directly (with `MIPS_KERNEL=scalar` forcing the
//!   portable path around the uninterpretable vector intrinsics).
//!
//! The discipline is mechanically enforced: `mips-lint` (CI's lint job)
//! rejects any `unsafe` outside this directory, and rejects any `unsafe`
//! here that is not annotated — every `unsafe { .. }` call site carries a
//! `// SAFETY:` argument naming the invariant it relies on, and every
//! `unsafe fn` carries a `// SAFETY contract:` stating what its callers
//! must uphold. A new unsafe block without its argument fails CI, not
//! review.

#![allow(unsafe_code)]

use crate::blocking::{MR, NR};
use std::any::TypeId;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// A dispatch table of double-precision micro-kernels.
///
/// All fields are plain `fn` pointers: the arch-specific `unsafe` functions
/// are wrapped in safe shims whose soundness is guaranteed by construction
/// (see the module-level safety contract). Obtain one via [`active`] (the
/// process-wide selection) or [`Kernel::scalar`] (the portable reference).
#[derive(Clone, Copy)]
pub struct Kernel {
    name: &'static str,
    dot: fn(&[f64], &[f64]) -> f64,
    dot_seq4: fn(&[f64], [&[f64]; 4]) -> [f64; 4],
    axpy: fn(f64, &[f64], &mut [f64]),
    dist2_sq: fn(&[f64], &[f64]) -> f64,
    suffix_sumsq: fn(&[f64], &mut [f64]),
    micro_4x8: fn(&[f64], &[f64], &mut [[f64; NR]; MR]),
    dot_f32: fn(&[f32], &[f32]) -> f32,
    suffix_sumsq_f32: fn(&[f32], &mut [f32]),
    micro_4x8_f32: fn(&[f32], &[f32], &mut [[f32; NR]; MR]),
    dot_i8: fn(&[i8], &[i8]) -> i32,
    dot_i8_quad: fn(&[i8], [&[i8]; 4]) -> [i32; 4],
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

impl Kernel {
    /// The kernel's identity: `"avx2-fma"`, `"neon"`, or `"scalar"`.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Dot product `xᵀy`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        (self.dot)(x, y)
    }

    /// Four dot products `xᵀy_i` computed with the **GEMM per-element
    /// reduction**: each product is one sequential fused-multiply-add
    /// chain (bit-identical to the matching `gemm_nt*` output element),
    /// and the four independent chains pipeline so the pass is
    /// throughput-bound rather than FMA-latency-bound.
    ///
    /// # Panics
    /// Panics if any length differs from `x`'s.
    #[inline]
    pub fn dot_seq4(&self, x: &[f64], ys: [&[f64]; 4]) -> [f64; 4] {
        for y in &ys {
            assert_eq!(x.len(), y.len(), "dot_seq4: length mismatch");
        }
        (self.dot_seq4)(x, ys)
    }

    /// `y += alpha * x`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        (self.axpy)(alpha, x, y)
    }

    /// Squared Euclidean distance `‖x − y‖²`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn dist2_sq(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
        (self.dist2_sq)(x, y)
    }

    /// Suffix sums of squares: `out[j] = Σ_{i ≥ j} x[i]²`, with
    /// `out[x.len()] = 0`.
    ///
    /// # Panics
    /// Panics unless `out.len() == x.len() + 1`.
    #[inline]
    pub fn suffix_sumsq(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), x.len() + 1, "suffix_sumsq: output length");
        (self.suffix_sumsq)(x, out)
    }

    /// The GEMM register micro-kernel: `acc += Aᵖ ⊗ Bᵖ` over the packed
    /// depth, for tile-interleaved panels (`MR` values of A and `NR` values
    /// of B per depth step).
    ///
    /// # Panics
    /// Panics unless the panel lengths describe the same depth.
    #[inline]
    pub fn micro_4x8(&self, a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
        assert_eq!(
            a_panel.len() / MR,
            b_panel.len() / NR,
            "micro_4x8: panel depth mismatch"
        );
        (self.micro_4x8)(a_panel, b_panel, acc)
    }

    /// Single-precision dot product `xᵀy` for the screen path. **Not**
    /// bit-identical across kernel sets (see the module docs); callers must
    /// widen results by [`crate::f32_screen_envelope`].
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn dot_f32(&self, x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot_f32: length mismatch");
        (self.dot_f32)(x, y)
    }

    /// Single-precision suffix sums of squares (screen path; tolerance, not
    /// bit-identity — see the module docs).
    ///
    /// # Panics
    /// Panics unless `out.len() == x.len() + 1`.
    #[inline]
    pub fn suffix_sumsq_f32(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), x.len() + 1, "suffix_sumsq_f32: output length");
        (self.suffix_sumsq_f32)(x, out)
    }

    /// Single-precision GEMM register micro-kernel (screen path; tolerance,
    /// not bit-identity — see the module docs).
    ///
    /// # Panics
    /// Panics unless the panel lengths describe the same depth.
    #[inline]
    pub fn micro_4x8_f32(&self, a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
        assert_eq!(
            a_panel.len() / MR,
            b_panel.len() / NR,
            "micro_4x8_f32: panel depth mismatch"
        );
        (self.micro_4x8_f32)(a_panel, b_panel, acc)
    }

    /// Int8 dot product `xᵀy` for the quantized screen path, accumulated
    /// exactly in `i32`. Integer addition is associative, so — unlike the
    /// f32 screen kernels — every kernel set returns the **identical**
    /// integer; the i8 screen's envelope only has to cover quantization,
    /// not accumulation order.
    ///
    /// # Panics
    /// Panics if the lengths differ or exceed
    /// [`crate::quant::I8_DOT_MAX_LEN`] (the i32-overflow guard).
    #[inline]
    pub fn dot_i8(&self, x: &[i8], y: &[i8]) -> i32 {
        assert_eq!(x.len(), y.len(), "dot_i8: length mismatch");
        assert!(
            x.len() <= crate::quant::I8_DOT_MAX_LEN,
            "dot_i8: length exceeds the i32-overflow cap"
        );
        (self.dot_i8)(x, y)
    }

    /// Four int8 dot products `xᵀy_q` at once: four independent integer
    /// accumulation chains sharing the `x` loads, so scan loops consuming
    /// item rows in groups of four stay throughput-bound. Same exactness
    /// and overflow contract as [`Kernel::dot_i8`].
    ///
    /// # Panics
    /// Panics if any length differs from `x`'s or exceeds
    /// [`crate::quant::I8_DOT_MAX_LEN`].
    #[inline]
    pub fn dot_i8_quad(&self, x: &[i8], ys: [&[i8]; 4]) -> [i32; 4] {
        for y in &ys {
            assert_eq!(x.len(), y.len(), "dot_i8_quad: length mismatch");
        }
        assert!(
            x.len() <= crate::quant::I8_DOT_MAX_LEN,
            "dot_i8_quad: length exceeds the i32-overflow cap"
        );
        (self.dot_i8_quad)(x, ys)
    }

    /// The portable scalar kernel set (the guaranteed fallback and the
    /// reference for the bit-identity contract).
    pub fn scalar() -> Kernel {
        Kernel {
            name: "scalar",
            dot: crate::kernels::dot_scalar_f64,
            dot_seq4: crate::kernels::dot_seq4_scalar_f64,
            axpy: crate::kernels::axpy_scalar_f64,
            dist2_sq: crate::kernels::dist2_sq_scalar_f64,
            suffix_sumsq: crate::kernels::suffix_sumsq_scalar_f64,
            micro_4x8: crate::gemm::micro_4x8_scalar_f64,
            dot_f32: crate::kernels::dot_scalar_f32,
            suffix_sumsq_f32: crate::kernels::suffix_sumsq_scalar_f32,
            micro_4x8_f32: crate::gemm::micro_4x8_scalar_f32,
            dot_i8: crate::kernels::dot_scalar_i8,
            dot_i8_quad: crate::kernels::dot_i8_quad_scalar,
        }
    }

    /// The AVX2+FMA kernel set, or `None` if the CPU lacks either feature
    /// (always `None` off x86-64).
    pub fn avx2() -> Option<Kernel> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return Some(Kernel {
                    name: "avx2-fma",
                    dot: avx2::dot,
                    dot_seq4: avx2::dot_seq4,
                    axpy: avx2::axpy,
                    dist2_sq: avx2::dist2_sq,
                    suffix_sumsq: avx2::suffix_sumsq,
                    micro_4x8: avx2::micro_4x8,
                    dot_f32: avx2::dot_f32,
                    suffix_sumsq_f32: avx2::suffix_sumsq_f32,
                    micro_4x8_f32: avx2::micro_4x8_f32,
                    dot_i8: avx2::dot_i8,
                    dot_i8_quad: avx2::dot_i8_quad,
                });
            }
            None
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            None
        }
    }

    /// The NEON kernel set, or `None` off `aarch64` (where NEON with
    /// double-precision FMA is a baseline feature, so detection is static).
    pub fn neon() -> Option<Kernel> {
        #[cfg(target_arch = "aarch64")]
        {
            Some(Kernel {
                name: "neon",
                dot: neon::dot,
                // aarch64 guarantees scalar FMA, so the portable body
                // already compiles to fused hardware madds.
                dot_seq4: crate::kernels::dot_seq4_scalar_f64,
                axpy: neon::axpy,
                dist2_sq: neon::dist2_sq,
                suffix_sumsq: neon::suffix_sumsq,
                micro_4x8: neon::micro_4x8,
                dot_f32: neon::dot_f32,
                suffix_sumsq_f32: neon::suffix_sumsq_f32,
                micro_4x8_f32: neon::micro_4x8_f32,
                dot_i8: neon::dot_i8,
                dot_i8_quad: neon::dot_i8_quad,
            })
        }
        #[cfg(not(target_arch = "aarch64"))]
        {
            None
        }
    }

    /// Resolves a kernel by name (`"scalar"`, `"avx2"`, `"avx2-fma"`,
    /// `"neon"`), returning `None` for unknown names or kernels this CPU
    /// cannot run. This is the `MIPS_KERNEL` lookup, exposed for tests.
    pub fn by_name(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::scalar()),
            "avx2" | "avx2-fma" => Kernel::avx2(),
            "neon" => Kernel::neon(),
            _ => None,
        }
    }

    /// The best kernel this CPU supports, ignoring the environment override.
    pub fn best() -> Kernel {
        Kernel::avx2()
            .or_else(Kernel::neon)
            .unwrap_or_else(Kernel::scalar)
    }
}

/// The process-wide active kernel, selected on first use and cached.
///
/// Honors `MIPS_KERNEL` (see the module docs); otherwise picks the best
/// supported set. The selection is intentionally immutable for the process
/// lifetime so mixed-kernel results can never be produced within one run.
pub fn active() -> &'static Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    ACTIVE.get_or_init(|| match std::env::var("MIPS_KERNEL") {
        // A set-but-empty variable (e.g. a CI matrix leg exporting
        // `MIPS_KERNEL: ''`) means "no override", not "force scalar".
        Ok(name) if !name.trim().is_empty() => {
            Kernel::by_name(name.trim()).unwrap_or_else(Kernel::scalar)
        }
        _ => Kernel::best(),
    })
}

/// Reinterprets `&[T]` as `&[f64]` when `T` *is* `f64`.
#[inline(always)]
pub(crate) fn as_f64<T: 'static>(x: &[T]) -> Option<&[f64]> {
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: the TypeId check proves T == f64, so this is a no-op
        // reinterpretation of the same slice type.
        Some(unsafe { &*(x as *const [T] as *const [f64]) })
    } else {
        None
    }
}

/// Reinterprets `&mut [T]` as `&mut [f64]` when `T` *is* `f64`.
#[inline(always)]
pub(crate) fn as_f64_mut<T: 'static>(x: &mut [T]) -> Option<&mut [f64]> {
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: as in `as_f64`; uniqueness is inherited from the input.
        Some(unsafe { &mut *(x as *mut [T] as *mut [f64]) })
    } else {
        None
    }
}

/// Reinterprets a generic `MR×NR` accumulator tile as `f64` when `T` is.
#[inline(always)]
pub(crate) fn acc_as_f64_mut<T: 'static>(acc: &mut [[T; NR]; MR]) -> Option<&mut [[f64; NR]; MR]> {
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: the TypeId check proves T == f64; the array layout is
        // unchanged, so this is a no-op reinterpretation.
        Some(unsafe { &mut *(acc as *mut [[T; NR]; MR] as *mut [[f64; NR]; MR]) })
    } else {
        None
    }
}

/// Reinterprets `&[T]` as `&[f32]` when `T` *is* `f32`.
#[inline(always)]
pub(crate) fn as_f32<T: 'static>(x: &[T]) -> Option<&[f32]> {
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves T == f32, so this is a no-op
        // reinterpretation of the same slice type.
        Some(unsafe { &*(x as *const [T] as *const [f32]) })
    } else {
        None
    }
}

/// Reinterprets `&mut [T]` as `&mut [f32]` when `T` *is* `f32`.
#[inline(always)]
pub(crate) fn as_f32_mut<T: 'static>(x: &mut [T]) -> Option<&mut [f32]> {
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: as in `as_f32`; uniqueness is inherited from the input.
        Some(unsafe { &mut *(x as *mut [T] as *mut [f32]) })
    } else {
        None
    }
}

/// Reinterprets a generic `MR×NR` accumulator tile as `f32` when `T` is.
#[inline(always)]
pub(crate) fn acc_as_f32_mut<T: 'static>(acc: &mut [[T; NR]; MR]) -> Option<&mut [[f32; NR]; MR]> {
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves T == f32; the array layout is
        // unchanged, so this is a no-op reinterpretation.
        Some(unsafe { &mut *(acc as *mut [[T; NR]; MR] as *mut [[f32; NR]; MR]) })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect()
    }

    /// Every kernel this host can run, always including scalar.
    fn all_kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::scalar()];
        ks.extend(Kernel::avx2());
        ks.extend(Kernel::neon());
        ks
    }

    #[test]
    fn by_name_resolves_scalar_everywhere() {
        assert_eq!(Kernel::by_name("scalar").unwrap().name(), "scalar");
        assert!(Kernel::by_name("no-such-kernel").is_none());
    }

    #[test]
    fn active_is_one_of_the_known_kernels() {
        let name = active().name();
        assert!(
            ["scalar", "avx2-fma", "neon"].contains(&name),
            "unexpected kernel {name}"
        );
    }

    #[test]
    fn best_never_panics_and_is_named() {
        assert!(!Kernel::best().name().is_empty());
    }

    #[test]
    fn dot_bit_identical_across_kernels() {
        for len in [0usize, 1, 3, 4, 7, 8, 31, 50, 128, 257] {
            let x = pseudo(len, 11);
            let y = pseudo(len, 13);
            let want = Kernel::scalar().dot(&x, &y);
            for k in all_kernels() {
                let got = k.dot(&x, &y);
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{}: len {len}: {got:e} vs scalar {want:e}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn dot_seq4_bit_identical_across_kernels_and_to_gemm_order() {
        for len in [0usize, 1, 3, 8, 31, 50, 257] {
            let x = pseudo(len, 11);
            let ys: Vec<Vec<f64>> = (0..4).map(|i| pseudo(len, 43 + i)).collect();
            let refs = [&ys[0][..], &ys[1][..], &ys[2][..], &ys[3][..]];
            let want = Kernel::scalar().dot_seq4(&x, refs);
            for k in all_kernels() {
                let got = k.dot_seq4(&x, refs);
                for lane in 0..4 {
                    assert_eq!(
                        got[lane].to_bits(),
                        want[lane].to_bits(),
                        "{} lane {lane} len {len}",
                        k.name()
                    );
                }
            }
            // Each lane is exactly the sequential (GEMM-ordered) chain.
            for lane in 0..4 {
                let mut acc = 0.0f64;
                for (a, b) in x.iter().zip(&ys[lane]) {
                    acc = a.mul_add(*b, acc);
                }
                assert_eq!(want[lane].to_bits(), acc.to_bits(), "lane {lane} len {len}");
            }
        }
    }

    #[test]
    fn dist2_bit_identical_across_kernels() {
        for len in [0usize, 1, 5, 16, 33, 50, 100] {
            let x = pseudo(len, 21);
            let y = pseudo(len, 23);
            let want = Kernel::scalar().dist2_sq(&x, &y);
            for k in all_kernels() {
                assert_eq!(k.dist2_sq(&x, &y).to_bits(), want.to_bits(), "{}", k.name());
            }
        }
    }

    #[test]
    fn axpy_bit_identical_across_kernels() {
        for len in [0usize, 1, 6, 17, 64, 97] {
            let x = pseudo(len, 31);
            let base = pseudo(len, 37);
            let mut want = base.clone();
            Kernel::scalar().axpy(1.7, &x, &mut want);
            for k in all_kernels() {
                let mut got = base.clone();
                k.axpy(1.7, &x, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "{}", k.name());
                }
            }
        }
    }

    #[test]
    fn micro_4x8_bit_identical_across_kernels() {
        for depth in [0usize, 1, 2, 7, 64, 256] {
            let a = pseudo(depth * MR, 41);
            let b = pseudo(depth * NR, 43);
            let mut want = [[0.25f64; NR]; MR];
            Kernel::scalar().micro_4x8(&a, &b, &mut want);
            for k in all_kernels() {
                let mut got = [[0.25f64; NR]; MR];
                k.micro_4x8(&a, &b, &mut got);
                for i in 0..MR {
                    for j in 0..NR {
                        assert_eq!(
                            got[i][j].to_bits(),
                            want[i][j].to_bits(),
                            "{} depth {depth} ({i},{j})",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_sumsq_matches_scalar_within_tolerance() {
        // The suffix scan is the documented exception to bit-identity:
        // assert tight relative agreement instead.
        for len in [0usize, 1, 3, 4, 9, 50, 130] {
            let x = pseudo(len, 51);
            let mut want = vec![0.0; len + 1];
            Kernel::scalar().suffix_sumsq(&x, &mut want);
            for k in all_kernels() {
                let mut got = vec![0.0; len + 1];
                k.suffix_sumsq(&x, &mut got);
                for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-12 * (1.0 + w.abs()),
                        "{} len {len} j {j}: {g} vs {w}",
                        k.name()
                    );
                }
                assert_eq!(got[len], 0.0);
            }
        }
    }

    #[test]
    fn slice_reinterpretation_is_type_guarded() {
        let xs = [1.0f64, 2.0];
        assert!(as_f64(&xs).is_some());
        let ys = [1.0f32, 2.0];
        assert!(as_f64(&ys).is_none());
        let mut zs = [3.0f64];
        assert!(as_f64_mut(&mut zs).is_some());
        let mut acc = [[0.0f64; NR]; MR];
        assert!(acc_as_f64_mut(&mut acc).is_some());
        let mut acc32 = [[0.0f32; NR]; MR];
        assert!(acc_as_f64_mut(&mut acc32).is_none());

        // The f32 guards mirror the f64 ones exactly.
        assert!(as_f32(&ys).is_some());
        assert!(as_f32(&xs).is_none());
        let mut ws = [3.0f32];
        assert!(as_f32_mut(&mut ws).is_some());
        assert!(acc_as_f32_mut(&mut acc32).is_some());
        assert!(acc_as_f32_mut(&mut acc).is_none());
    }

    fn pseudo32(len: usize, seed: u64) -> Vec<f32> {
        pseudo(len, seed).into_iter().map(|v| v as f32).collect()
    }

    #[test]
    fn dot_f32_within_screen_envelope_of_exact_f64() {
        // The f32 kernels promise tolerance, not bit-identity: every kernel's
        // f32 dot must land inside the screen envelope around the exact (f64)
        // product of the *rounded* operands' originals.
        for len in [0usize, 1, 3, 7, 8, 16, 31, 64, 257] {
            let x64 = pseudo(len, 61);
            let y64 = pseudo(len, 67);
            let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
            let y32: Vec<f32> = y64.iter().map(|&v| v as f32).collect();
            let exact = Kernel::scalar().dot(&x64, &y64);
            let unorm = Kernel::scalar().dot(&x64, &x64).sqrt();
            let inorm = Kernel::scalar().dot(&y64, &y64).sqrt();
            let env = crate::f32_screen_envelope(len, unorm, inorm);
            for k in all_kernels() {
                let got = k.dot_f32(&x32, &y32) as f64;
                assert!(
                    (got - exact).abs() <= env,
                    "{} len {len}: |{got} - {exact}| > {env}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn dot_i8_bit_identical_across_kernels() {
        // Integer accumulation is exact, so the i8 kernels sit inside the
        // bit-identity contract under every kernel set — including shapes
        // that are not multiples of the 16/32-byte vector widths, and the
        // extreme codes ±127.
        for len in [0usize, 1, 3, 15, 16, 17, 31, 32, 33, 50, 127, 257] {
            let x: Vec<i8> = (0..len)
                .map(|j| [127i8, -127, 0, 1, -1, 64, -33][(j * 5 + 3) % 7])
                .collect();
            let ys: Vec<Vec<i8>> = (0..4)
                .map(|q| {
                    (0..len)
                        .map(|j| [-127i8, 127, 5, -5, 0, -90, 17][(j * 11 + q * 13 + 1) % 7])
                        .collect()
                })
                .collect();
            let refs = [&ys[0][..], &ys[1][..], &ys[2][..], &ys[3][..]];
            let want = Kernel::scalar().dot_i8(&x, &ys[0]);
            let want_quad = Kernel::scalar().dot_i8_quad(&x, refs);
            // The scalar reference agrees with a plain widening loop.
            let naive: i32 = x
                .iter()
                .zip(&ys[0])
                .map(|(&a, &b)| a as i32 * b as i32)
                .sum();
            assert_eq!(want, naive, "len {len}");
            assert_eq!(want_quad[0], naive, "len {len}");
            for k in all_kernels() {
                assert_eq!(k.dot_i8(&x, &ys[0]), want, "{} len {len}", k.name());
                assert_eq!(k.dot_i8_quad(&x, refs), want_quad, "{} len {len}", k.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflow cap")]
    fn dot_i8_rejects_lengths_past_the_overflow_cap() {
        let too_long = vec![1i8; crate::quant::I8_DOT_MAX_LEN + 1];
        let _ = Kernel::scalar().dot_i8(&too_long, &too_long);
    }

    #[test]
    fn suffix_sumsq_f32_matches_scalar_within_tolerance() {
        for len in [0usize, 1, 3, 8, 9, 50, 130] {
            let x = pseudo32(len, 71);
            let mut want = vec![0.0f32; len + 1];
            Kernel::scalar().suffix_sumsq_f32(&x, &mut want);
            for k in all_kernels() {
                let mut got = vec![0.0f32; len + 1];
                k.suffix_sumsq_f32(&x, &mut got);
                for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                        "{} len {len} j {j}: {g} vs {w}",
                        k.name()
                    );
                }
                assert_eq!(got[len], 0.0);
            }
        }
    }

    #[test]
    fn micro_4x8_f32_matches_scalar_within_tolerance() {
        for depth in [0usize, 1, 2, 7, 64, 256] {
            let a = pseudo32(depth * MR, 81);
            let b = pseudo32(depth * NR, 83);
            let mut want = [[0.25f32; NR]; MR];
            Kernel::scalar().micro_4x8_f32(&a, &b, &mut want);
            for k in all_kernels() {
                let mut got = [[0.25f32; NR]; MR];
                k.micro_4x8_f32(&a, &b, &mut got);
                for i in 0..MR {
                    for j in 0..NR {
                        let (g, w) = (got[i][j], want[i][j]);
                        assert!(
                            (g - w).abs() <= 1e-3 * (1.0 + w.abs()),
                            "{} depth {depth} ({i},{j}): {g} vs {w}",
                            k.name()
                        );
                    }
                }
            }
        }
    }
}
