//! The item-matrix SVD transform used by FEXIPRO's "S" stage.
//!
//! For a tall item matrix `P (n × f)` with thin SVD `P = U Σ Vᵀ`, the
//! orthogonal change of basis `x ↦ Vᵀx` preserves every inner product
//! (`(Vᵀu)·(Vᵀp) = uᵀV Vᵀp = u·p`) while re-ordering coordinates by captured
//! energy (descending singular value). After the transform, the first few
//! coordinates carry most of each inner product, so partial products plus a
//! Cauchy–Schwarz bound on the suffix prune aggressively.
//!
//! We obtain `V` from the `f × f` Gram matrix `PᵀP = V Σ² Vᵀ` with the
//! [`crate::eig`] Jacobi solver — numerically ample for `f ≤ ~200` and `n` in
//! the millions, and it never materializes an `n × n` object.

use crate::eig::jacobi_eigen;
use crate::error::LinalgError;
use crate::gemm::matmul_nn;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// An orthogonal basis ordered by descending singular value, with helpers to
/// push vectors/matrices through the transform.
#[derive(Debug, Clone)]
pub struct SvdBasis<T> {
    /// Right singular vectors as columns (`f × f`, orthogonal).
    pub v: Matrix<T>,
    /// Singular values, descending.
    pub singular_values: Vec<T>,
}

impl<T: Scalar> SvdBasis<T> {
    /// Computes the basis from a tall data matrix (one vector per row).
    ///
    /// # Errors
    /// Propagates validation/convergence failures from the eigensolver.
    pub fn from_rows(data: &Matrix<T>) -> Result<Self, LinalgError> {
        data.validate("SvdBasis::from_rows")?;
        let gram = gram(data);
        let eig = jacobi_eigen(&gram)?;
        let singular_values = eig
            .values
            .iter()
            .map(|&l| l.max_val(T::ZERO).sqrt())
            .collect();
        Ok(SvdBasis {
            v: eig.vectors,
            singular_values,
        })
    }

    /// Dimensionality `f` of the basis.
    pub fn dim(&self) -> usize {
        self.v.rows()
    }

    /// Applies `x ↦ Vᵀx` to every row of `m` (returns `M·V`, since rows are
    /// vectors).
    pub fn transform(&self, m: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            m.cols(),
            self.dim(),
            "SvdBasis::transform: dimension mismatch"
        );
        matmul_nn(m, &self.v)
    }

    /// Fraction of total energy captured by the first `h` coordinates.
    ///
    /// FEXIPRO picks its checkpoint `h` so this reaches a target (e.g. 0.9).
    pub fn energy_fraction(&self, h: usize) -> T {
        let total: T = self
            .singular_values
            .iter()
            .map(|&s| s * s)
            .fold(T::ZERO, |a, b| a + b);
        if total == T::ZERO {
            return T::ONE;
        }
        let head: T = self
            .singular_values
            .iter()
            .take(h)
            .map(|&s| s * s)
            .fold(T::ZERO, |a, b| a + b);
        head / total
    }

    /// Smallest prefix length whose energy fraction reaches `target`
    /// (clamped to `[1, f]`).
    pub fn checkpoint_for_energy(&self, target: T) -> usize {
        let f = self.dim();
        for h in 1..=f {
            if self.energy_fraction(h) >= target {
                return h;
            }
        }
        f.max(1)
    }
}

/// The Gram matrix `MᵀM` (`f × f`) of a tall row-major matrix, accumulated
/// row-by-row so only `O(f²)` extra memory is used.
pub fn gram<T: Scalar>(m: &Matrix<T>) -> Matrix<T> {
    let f = m.cols();
    let mut g = Matrix::zeros(f, f);
    for row in m.iter_rows() {
        for i in 0..f {
            let ri = row[i];
            if ri == T::ZERO {
                continue;
            }
            let grow = g.row_mut(i);
            for (j, slot) in grow.iter_mut().enumerate().skip(i) {
                *slot = ri.mul_add(row[j], *slot);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..f {
        for j in (i + 1)..f {
            let v = g.get(i, j);
            g.set(j, i, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dot;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn gram_matches_naive() {
        let m = random_matrix(13, 5, 3);
        let g = gram(&m);
        let naive = matmul_nn(&m.transpose(), &m);
        for i in 0..5 {
            for j in 0..5 {
                assert!((g.get(i, j) - naive.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn transform_preserves_inner_products() {
        let items = random_matrix(40, 8, 17);
        let users = random_matrix(6, 8, 23);
        let basis = SvdBasis::from_rows(&items).unwrap();
        let ti = basis.transform(&items);
        let tu = basis.transform(&users);
        for u in 0..6 {
            for i in 0..40 {
                let orig = dot(users.row(u), items.row(i));
                let trans = dot(tu.row(u), ti.row(i));
                assert!((orig - trans).abs() < 1e-9, "({u},{i}): {orig} vs {trans}");
            }
        }
    }

    #[test]
    fn singular_values_descend_and_match_energy() {
        let items = random_matrix(60, 6, 5);
        let basis = SvdBasis::from_rows(&items).unwrap();
        for w in basis.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Total energy equals the squared Frobenius norm.
        let total: f64 = basis.singular_values.iter().map(|s| s * s).sum();
        let frob = items.frobenius_norm();
        assert!((total - frob * frob).abs() < 1e-7);
        assert!((basis.energy_fraction(6) - 1.0).abs() < 1e-12);
        assert!(basis.energy_fraction(1) <= 1.0);
    }

    #[test]
    fn transformed_coordinates_concentrate_energy() {
        // Build an item matrix with strong first-direction correlation; after
        // the transform the first coordinate should dominate.
        let mut items = random_matrix(100, 8, 9);
        for r in 0..100 {
            let bias = 5.0 * ((r % 10) as f64 / 10.0 + 0.5);
            items.row_mut(r)[0] += bias;
        }
        let basis = SvdBasis::from_rows(&items).unwrap();
        assert!(basis.energy_fraction(1) > 0.5);
        assert!(basis.checkpoint_for_energy(0.5) == 1);
    }

    #[test]
    fn checkpoint_for_energy_clamps() {
        let items = random_matrix(20, 4, 2);
        let basis = SvdBasis::from_rows(&items).unwrap();
        assert_eq!(basis.checkpoint_for_energy(1.0 + 1.0), 4); // unreachable target
        assert!(basis.checkpoint_for_energy(0.0) >= 1);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        let empty = Matrix::<f64>::zeros(0, 4);
        assert!(SvdBasis::from_rows(&empty).is_err());
        let mut bad = random_matrix(3, 3, 1);
        bad.set(1, 1, f64::INFINITY);
        assert!(SvdBasis::from_rows(&bad).is_err());
    }

    #[test]
    fn basis_is_orthogonal() {
        let items = random_matrix(30, 7, 77);
        let basis = SvdBasis::from_rows(&items).unwrap();
        let vtv = matmul_nn(&basis.v.transpose(), &basis.v);
        for i in 0..7 {
            for j in 0..7 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }
}
