//! The wire codec: a hand-rolled JSON parser and the request/response
//! translation between HTTP bodies and the engine's typed structs.
//!
//! The parser is strict where it matters for robustness — depth-limited
//! recursion, no unescaped control characters, surrogate pairs handled,
//! trailing garbage rejected — and deliberately total: any byte sequence
//! produces either a [`Json`] value or an error string, never a panic.
//! Serialization reuses [`JsonWriter`] so
//! the `/metrics` endpoint, query responses, and the bench digests all
//! come from one serializer.
//!
//! ## Request shape (`POST /query`)
//!
//! ```json
//! {"k": 10,
//!  "users": "all" | [0, 7, 7] | {"range": [0, 128]},
//!  "exclude": {"3": [17, 99]}}
//! ```
//!
//! `users` defaults to `"all"`; `exclude` maps user ids (as decimal object
//! keys — JSON objects cannot have numeric keys) to item-id arrays.
//! Unknown fields are rejected so client typos surface as 400s instead of
//! silently serving the wrong query.
//!
//! ## Response shape
//!
//! ```json
//! {"backend": "maximus", "precision": "f64", "planned": true, "epoch": 0,
//!  "serve_seconds": 0.000123,
//!  "results": [{"items": [4, 1], "scores": [2.25, 1.5]}]}
//! ```
//!
//! Scores are rendered in Rust's shortest round-trippable decimal form, so
//! `str::parse::<f64>` on the client recovers the exact bits — the wire
//! preserves the engine's bit-identity guarantee.

use mips_core::engine::{
    ExclusionSet, QueryRequest, QueryResponse, QueryVector, UserSelection, VectorQueryRequest,
};
use mips_core::serve::JsonWriter;
use mips_data::sparse::SparseVec;

/// Maximum container nesting the parser accepts; deeper input is rejected
/// (depth bombs would otherwise exhaust the stack).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number (integers are recovered via [`Json::as_u64`]).
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in input order; duplicate keys are kept (lookups return
    /// the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object's fields, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(elems) => Some(elems),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer (rejects fractions,
    /// negatives, and magnitudes beyond 2^53 where f64 loses exactness).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// First field with this key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing characters after JSON value at byte {}",
            p.pos
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth >= MAX_DEPTH {
            return Err(format!("JSON nesting deeper than {MAX_DEPTH}"));
        }
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of JSON input".into()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => {
                self.pos += 1;
                self.string().map(Json::Str)
            }
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!(
                "unexpected byte 0x{b:02x} at position {}",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at position {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // past '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected object key at position {}", self.pos));
            }
            self.pos += 1;
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at position {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at position {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // past '['
        let mut elems = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elems));
                }
                _ => return Err(format!("expected ',' or ']' at position {}", self.pos)),
            }
        }
    }

    /// Parses a string body; `self.pos` is just past the opening quote.
    fn string(&mut self) -> Result<String, String> {
        let mut out = String::new();
        let mut run = self.pos; // start of the current verbatim run
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string literal")?;
            match b {
                b'"' => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("invalid escape '\\{}'", esc as char)),
                    }
                    run = self.pos;
                }
                0x00..=0x1f => return Err("unescaped control character in string".into()),
                _ => self.pos += 1,
            }
        }
    }

    /// The verbatim bytes `run..self.pos` as UTF-8 (always valid: the input
    /// is a `&str` and both run delimiters are ASCII).
    fn run_str(&self, run: usize) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes[run..self.pos]).map_err(|_| "invalid UTF-8".into())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let mut v = 0u32;
        for &b in chunk {
            v = v * 16
                + match b {
                    b'0'..=b'9' => (b - b'0') as u32,
                    b'a'..=b'f' => (b - b'a' + 10) as u32,
                    b'A'..=b'F' => (b - b'A' + 10) as u32,
                    _ => return Err("non-hex digit in \\u escape".into()),
                };
        }
        self.pos += 4;
        Ok(v)
    }

    /// Resolves `\uXXXX` (pos just past the `u`), including surrogate
    /// pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        let code = match first {
            0xD800..=0xDBFF => {
                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                    return Err("high surrogate not followed by \\u escape".into());
                }
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err("invalid low surrogate".into());
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            }
            0xDC00..=0xDFFF => return Err("lone low surrogate".into()),
            c => c,
        };
        char::from_u32(code).ok_or_else(|| format!("invalid code point U+{code:04X}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("invalid number at position {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("digits required after '.' at position {start}"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("digits required in exponent at position {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("unparseable number {text:?}: {e}"))
    }
}

/// Decodes a `POST /query` body into the engine's request struct. Errors
/// are human-readable strings the caller wraps into a 400 response.
pub fn decode_query_request(body: &[u8]) -> Result<QueryRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not valid UTF-8")?;
    let doc = parse(text)?;
    let fields = doc.as_obj().ok_or("request body must be a JSON object")?;
    let mut request = None;
    for (key, _) in fields {
        if !matches!(key.as_str(), "k" | "users" | "exclude") {
            return Err(format!(
                "unknown field {key:?} (expected \"k\", \"users\", \"exclude\")"
            ));
        }
    }
    if let Some(k) = doc.get("k") {
        let k = k.as_u64().ok_or("\"k\" must be a non-negative integer")?;
        request = Some(QueryRequest::top_k(
            usize::try_from(k).map_err(|_| "\"k\" too large")?,
        ));
    }
    let mut request = request.ok_or("missing required field \"k\"")?;
    if let Some(users) = doc.get("users") {
        request.users = decode_users(users)?;
    }
    if let Some(exclude) = doc.get("exclude") {
        let pairs = decode_exclusions(exclude)?;
        if !pairs.is_empty() {
            request = request.exclude(ExclusionSet::from_pairs(pairs));
        }
    }
    Ok(request)
}

fn decode_users(users: &Json) -> Result<UserSelection, String> {
    match users {
        Json::Str(s) if s == "all" => Ok(UserSelection::All),
        Json::Arr(ids) => {
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                let id = id
                    .as_u64()
                    .ok_or("\"users\" ids must be non-negative integers")?;
                out.push(usize::try_from(id).map_err(|_| "\"users\" id too large")?);
            }
            Ok(UserSelection::Ids(out))
        }
        Json::Obj(_) => {
            let range = users
                .get("range")
                .and_then(Json::as_arr)
                .ok_or("\"users\" object must be {\"range\": [lo, hi]}")?;
            if range.len() != 2 {
                return Err("\"range\" must hold exactly [lo, hi]".into());
            }
            let lo = range[0]
                .as_u64()
                .ok_or("\"range\" bounds must be non-negative integers")?;
            let hi = range[1]
                .as_u64()
                .ok_or("\"range\" bounds must be non-negative integers")?;
            let lo = usize::try_from(lo).map_err(|_| "\"range\" bound too large")?;
            let hi = usize::try_from(hi).map_err(|_| "\"range\" bound too large")?;
            Ok(UserSelection::Range(lo..hi))
        }
        _ => Err("\"users\" must be \"all\", an id array, or {\"range\": [lo, hi]}".into()),
    }
}

fn decode_exclusions(exclude: &Json) -> Result<Vec<(usize, u32)>, String> {
    let fields = exclude
        .as_obj()
        .ok_or("\"exclude\" must be an object of user id -> item array")?;
    let mut pairs = Vec::new();
    for (user, items) in fields {
        let user: usize = user
            .parse()
            .map_err(|_| format!("\"exclude\" key {user:?} is not a user id"))?;
        let items = items
            .as_arr()
            .ok_or("\"exclude\" values must be item-id arrays")?;
        for item in items {
            let item = item
                .as_u64()
                .ok_or("excluded item ids must be non-negative integers")?;
            let item = u32::try_from(item).map_err(|_| "excluded item id too large")?;
            pairs.push((user, item));
        }
    }
    Ok(pairs)
}

/// Decodes a `POST /vector-query` body into the engine's ad-hoc vector
/// request. Two payload encodings, scored bit-identically by the engine:
///
/// ```json
/// {"k": 10, "vector": [0.25, 0.0, -1.5]}
/// {"k": 10, "vector": {"dim": 3, "indices": [0, 2], "values": [0.25, -1.5]}}
/// ```
///
/// The sparse form must list `indices` strictly ascending with finite,
/// nonzero `values`; violations are decode errors (400), mirroring
/// [`SparseVec::new`]'s own validation. Unknown fields are rejected like
/// the `/query` codec.
pub fn decode_vector_query_request(body: &[u8]) -> Result<VectorQueryRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not valid UTF-8")?;
    let doc = parse(text)?;
    let fields = doc.as_obj().ok_or("request body must be a JSON object")?;
    for (key, _) in fields {
        if !matches!(key.as_str(), "k" | "vector") {
            return Err(format!(
                "unknown field {key:?} (expected \"k\", \"vector\")"
            ));
        }
    }
    let k = doc
        .get("k")
        .ok_or("missing required field \"k\"")?
        .as_u64()
        .ok_or("\"k\" must be a non-negative integer")?;
    let k = usize::try_from(k).map_err(|_| "\"k\" too large")?;
    let vector = decode_vector(
        doc.get("vector")
            .ok_or("missing required field \"vector\"")?,
    )?;
    Ok(VectorQueryRequest { k, vector })
}

fn decode_vector(vector: &Json) -> Result<QueryVector, String> {
    match vector {
        Json::Arr(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for v in elems {
                out.push(
                    v.as_num()
                        .ok_or("dense \"vector\" entries must be numbers")?,
                );
            }
            Ok(QueryVector::Dense(out))
        }
        Json::Obj(fields) => {
            for (key, _) in fields {
                if !matches!(key.as_str(), "dim" | "indices" | "values") {
                    return Err(format!(
                        "unknown field {key:?} in sparse vector \
                         (expected \"dim\", \"indices\", \"values\")"
                    ));
                }
            }
            let dim = vector
                .get("dim")
                .ok_or("sparse vector needs \"dim\"")?
                .as_u64()
                .ok_or("\"dim\" must be a non-negative integer")?;
            let dim = usize::try_from(dim).map_err(|_| "\"dim\" too large")?;
            let indices = vector
                .get("indices")
                .and_then(Json::as_arr)
                .ok_or("sparse vector needs an \"indices\" array")?;
            let values = vector
                .get("values")
                .and_then(Json::as_arr)
                .ok_or("sparse vector needs a \"values\" array")?;
            let mut idx = Vec::with_capacity(indices.len());
            for i in indices {
                let i = i
                    .as_u64()
                    .ok_or("\"indices\" entries must be non-negative integers")?;
                idx.push(u32::try_from(i).map_err(|_| "\"indices\" entry too large")?);
            }
            let mut vals = Vec::with_capacity(values.len());
            for v in values {
                vals.push(v.as_num().ok_or("\"values\" entries must be numbers")?);
            }
            let sparse = SparseVec::new(dim, idx, vals)
                .map_err(|e| format!("invalid sparse vector: {e}"))?;
            Ok(QueryVector::Sparse(sparse))
        }
        _ => Err("\"vector\" must be a dense number array or a sparse \
                  {\"dim\", \"indices\", \"values\"} object"
            .into()),
    }
}

/// Renders a [`QueryResponse`] as the `POST /query` response body.
pub fn encode_response(response: &QueryResponse) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("backend", &response.backend);
    w.field_str("precision", response.precision.as_str());
    w.field_bool("planned", response.planned);
    w.field_u64("epoch", response.epoch);
    w.field_f64("serve_seconds", response.serve_seconds, 9);
    w.begin_arr_field("results");
    for list in &response.results {
        w.begin_obj();
        w.begin_arr_field("items");
        for &item in &list.items {
            w.push_u64(item as u64);
        }
        w.end_arr();
        w.begin_arr_field("scores");
        for &score in &list.scores {
            w.push_f64_shortest(score);
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Renders an error body: `{"error": message, "status": status}`.
pub fn encode_error(status: u16, message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("error", message);
    w.field_u64("status", status as u64);
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(vec![]),
            ])
        );
        let obj = parse("{\"a\": 1, \"b\": \"x\"}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(obj.get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "tru",
            "01a",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "[1] 2",
            "nul",
            "{\"a\":1,}",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_resolve() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn depth_limit_rejects_nesting_bombs() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn decodes_each_request_shape() {
        let all = decode_query_request(b"{\"k\": 5}").unwrap();
        assert_eq!(all.k, 5);
        assert_eq!(all.users, UserSelection::All);
        assert!(all.exclude.is_none());

        let ids = decode_query_request(b"{\"k\": 3, \"users\": [4, 4, 0]}").unwrap();
        assert_eq!(ids.users, UserSelection::Ids(vec![4, 4, 0]));

        let range = decode_query_request(b"{\"k\": 3, \"users\": {\"range\": [2, 9]}}").unwrap();
        assert_eq!(range.users, UserSelection::Range(2..9));

        let excl =
            decode_query_request(b"{\"k\": 1, \"exclude\": {\"3\": [7, 9], \"0\": []}}").unwrap();
        let set = excl.exclude.unwrap();
        assert_eq!(set.count_for(3), 2);
        assert_eq!(set.count_for(0), 0);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"[]"[..],
            b"{}",
            b"{\"k\": -1}",
            b"{\"k\": 1.5}",
            b"{\"k\": \"5\"}",
            b"{\"k\": 1, \"users\": \"some\"}",
            b"{\"k\": 1, \"users\": {\"range\": [1]}}",
            b"{\"k\": 1, \"users\": {\"range\": [1, 2, 3]}}",
            b"{\"k\": 1, \"users\": [-1]}",
            b"{\"k\": 1, \"users\": 7}",
            b"{\"k\": 1, \"exclude\": {\"x\": [1]}}",
            b"{\"k\": 1, \"exclude\": {\"0\": 1}}",
            b"{\"k\": 1, \"exclude\": {\"0\": [4294967296]}}",
            b"{\"k\": 1, \"unknown\": true}",
            b"\xff\xfe",
        ] {
            assert!(
                decode_query_request(bad).is_err(),
                "{:?} should fail",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn decodes_vector_query_shapes() {
        let dense = decode_vector_query_request(b"{\"k\": 4, \"vector\": [0.5, 0, -1.5]}").unwrap();
        assert_eq!(dense.k, 4);
        assert_eq!(dense.vector, QueryVector::Dense(vec![0.5, 0.0, -1.5]));

        let sparse = decode_vector_query_request(
            b"{\"k\": 2, \"vector\": {\"dim\": 6, \"indices\": [1, 4], \"values\": [0.5, -2.0]}}",
        )
        .unwrap();
        assert_eq!(sparse.k, 2);
        match &sparse.vector {
            QueryVector::Sparse(v) => {
                assert_eq!(v.dim(), 6);
                assert_eq!(v.indices(), &[1, 4]);
                assert_eq!(v.values(), &[0.5, -2.0]);
            }
            other => panic!("expected sparse payload, got {other:?}"),
        }
        // The two encodings densify identically.
        assert_eq!(sparse.vector.densify(), vec![0.0, 0.5, 0.0, 0.0, -2.0, 0.0]);
    }

    #[test]
    fn rejects_malformed_vector_queries() {
        for bad in [
            &b"{\"vector\": [1.0]}"[..],                 // no k
            b"{\"k\": 1}",                               // no vector
            b"{\"k\": 1, \"vector\": 7}",                // scalar vector
            b"{\"k\": 1, \"vector\": [\"x\"]}",          // non-numeric entry
            b"{\"k\": 1, \"vector\": [1], \"typo\": 0}", // unknown field
            b"{\"k\": 1, \"vector\": {\"dim\": 4}}",     // missing postings
            b"{\"k\": 1, \"vector\": {\"dim\": 4, \"indices\": [2, 1], \"values\": [1, 1]}}", // unsorted
            b"{\"k\": 1, \"vector\": {\"dim\": 4, \"indices\": [1, 1], \"values\": [1, 1]}}", // dupes
            b"{\"k\": 1, \"vector\": {\"dim\": 2, \"indices\": [5], \"values\": [1]}}", // out of range
            b"{\"k\": 1, \"vector\": {\"dim\": 2, \"indices\": [0], \"values\": [1, 2]}}", // length skew
        ] {
            assert!(
                decode_vector_query_request(bad).is_err(),
                "{:?} should fail",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn response_roundtrips_score_bits() {
        use mips_topk::TopKList;
        let response = QueryResponse {
            results: vec![TopKList {
                items: vec![4, 1],
                scores: vec![0.1 + 0.2, 1.0 / 3.0],
            }],
            backend: "maximus".into(),
            precision: mips_core::precision::Precision::F32Rescore,
            planned: true,
            epoch: 3,
            serve_seconds: 0.25,
        };
        let body = encode_response(&response);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("backend").and_then(Json::as_str), Some("maximus"));
        assert_eq!(
            doc.get("precision").and_then(Json::as_str),
            Some("f32-rescore")
        );
        assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(3));
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        let scores = results[0].get("scores").and_then(Json::as_arr).unwrap();
        for (wire, original) in scores.iter().zip(&response.results[0].scores) {
            assert_eq!(wire.as_num().unwrap().to_bits(), original.to_bits());
        }
    }

    #[test]
    fn error_body_is_parseable() {
        let body = encode_error(429, "server overloaded: \"queue\" full");
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_u64), Some(429));
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("queue"));
    }
}
