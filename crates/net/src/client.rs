//! A minimal blocking HTTP/1.1 client for loopback use: the integration
//! tests, the wire-level bench leg, and the CI smoke example all drive the
//! server through it.
//!
//! It speaks exactly the subset the server emits — `Content-Length`-framed
//! JSON responses over keep-alive connections — plus explicit pipelining
//! ([`Client::send`] many, then [`Client::recv`] in order), which the
//! bench uses to hold a fixed number of requests in flight per connection.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Lower-cased `name: value` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, UTF-8 decoded.
    pub body: String,
}

impl Response {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking keep-alive connection to the server.
pub struct Client {
    stream: TcpStream,
    /// Read-ahead bytes beyond the last parsed response.
    buf: Vec<u8>,
}

impl Client {
    /// Connects with a read timeout so a hung server fails tests instead
    /// of deadlocking them.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes one request without waiting for its response (pipelining).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<()> {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())
    }

    /// Writes raw bytes verbatim (malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-closes the write side, signalling EOF to the server while the
    /// response stream stays readable.
    pub fn finish_writes(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads the next response off the connection, skipping interim 1xx
    /// responses.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        loop {
            let response = self.recv_any()?;
            if response.status >= 200 {
                return Ok(response);
            }
        }
    }

    /// One request-response exchange.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        self.send(method, path, body)?;
        self.recv()
    }

    fn recv_any(&mut self) -> std::io::Result<Response> {
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            self.fill()?;
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| bad_data("non-UTF-8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad_data("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let total = head_end + content_length;
        while self.buf.len() < total {
            self.fill()?;
        }
        let body = String::from_utf8(self.buf[head_end..total].to_vec())
            .map_err(|_| bad_data("non-UTF-8 response body"))?;
        self.buf.drain(..total);
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn bad_data(message: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, message.to_string())
}
