//! Incremental HTTP/1.1 request parsing and response rendering.
//!
//! [`parse_request`] is a pure function over the connection's read buffer:
//! it either needs more bytes ([`Parse::Incomplete`]), yields one complete
//! request and how many bytes it consumed ([`Parse::Ready`]), or condemns
//! the stream with a status code ([`Parse::Bad`] — after a framing error
//! the byte stream cannot be resynchronized, so the connection closes
//! after the error response). Reparsing from scratch on every new read is
//! deliberate: requests are bounded by [`Limits`], so the head is small
//! and the parser stays stateless and trivially testable.
//!
//! Unsupported mechanics are rejected explicitly rather than misframed:
//! chunked transfer encoding is `501`, HTTP versions other than 1.0/1.1
//! are `505`, oversized heads are `431`, and oversized bodies `413`.

/// Byte budgets that bound a single request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest request head (request line + headers + blank line) accepted
    /// before the parser answers `431`.
    pub max_head_bytes: usize,
    /// Largest declared `Content-Length` accepted before `413`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One fully received request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// The body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection stays open after the response (HTTP/1.1
    /// default, overridden by `Connection:` headers).
    pub keep_alive: bool,
    /// Total bytes this request occupied in the buffer (head + body);
    /// the caller drains this many before parsing the next pipelined
    /// request.
    pub consumed: usize,
}

/// A request the server must refuse, with the status to say so.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The response status (4xx/5xx).
    pub status: u16,
    /// Human-readable cause, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Outcome of one parse attempt over the buffered bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The buffer does not yet hold a complete request. `expects_continue`
    /// turns true once the head is complete and carried
    /// `Expect: 100-continue` — the connection should emit the interim
    /// response (once) so the client sends its body.
    Incomplete {
        /// Whether an interim `100 Continue` is owed.
        expects_continue: bool,
    },
    /// One complete request.
    Ready(Request),
    /// The stream is unsalvageable; respond and close.
    Bad(HttpError),
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Parse {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Parse::Bad(HttpError::new(
                431,
                format!(
                    "request head exceeds {} bytes without terminating",
                    limits.max_head_bytes
                ),
            ));
        }
        return Parse::Incomplete {
            expects_continue: false,
        };
    };
    if head_len > limits.max_head_bytes {
        return Parse::Bad(HttpError::new(
            431,
            format!("request head exceeds {} bytes", limits.max_head_bytes),
        ));
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return Parse::Bad(HttpError::new(400, "request head is not valid UTF-8"));
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Parse::Bad(HttpError::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase() || b == b'-') {
        return Parse::Bad(HttpError::new(400, format!("malformed method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Parse::Bad(HttpError::new(
                505,
                format!("unsupported protocol version {version:?}"),
            ))
        }
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    let mut expects_continue = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Bad(HttpError::new(400, format!("malformed header {line:?}")));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Parse::Bad(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(parsed) = value.parse::<usize>() else {
                    return Parse::Bad(HttpError::new(
                        400,
                        format!("unparseable Content-Length {value:?}"),
                    ));
                };
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Parse::Bad(HttpError::new(400, "conflicting Content-Length headers"));
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Parse::Bad(HttpError::new(
                    501,
                    "transfer encodings (including chunked) are not supported; \
                     send Content-Length",
                ));
            }
            "connection" => {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    expects_continue = true;
                } else {
                    return Parse::Bad(HttpError::new(
                        417,
                        format!("unsupported expectation {value:?}"),
                    ));
                }
            }
            _ => {}
        }
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes {
        return Parse::Bad(HttpError::new(
            413,
            format!(
                "declared body of {body_len} bytes exceeds the {} byte limit",
                limits.max_body_bytes
            ),
        ));
    }
    let total = head_len + body_len;
    if buf.len() < total {
        return Parse::Incomplete { expects_continue };
    }
    let path = target.split('?').next().unwrap_or(target);
    Parse::Ready(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: buf[head_len..total].to_vec(),
        keep_alive,
        consumed: total,
    })
}

/// Index one past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        417 => "Expectation Failed",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Renders a complete response with a JSON body.
pub fn write_response(
    status: u16,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    out.extend_from_slice(b"Content-Type: application/json\r\n");
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_a_simple_get() {
        let buf = b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse_request(buf, &limits()) {
            Parse::Ready(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/metrics");
                assert!(req.body.is_empty());
                assert!(req.keep_alive);
                assert_eq!(req.consumed, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_pipelined_tail() {
        let buf = b"POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"k\": 5} GET /x";
        match parse_request(buf, &limits()) {
            Parse::Ready(req) => {
                assert_eq!(req.body, b"{\"k\": 5} ");
                assert_eq!(req.consumed, buf.len() - 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_until_head_and_body_arrive() {
        let full = b"POST /query HTTP/1.1\r\nContent-Length: 8\r\n\r\n{\"k\": 5}";
        for cut in [0, 1, 10, 30, full.len() - 1] {
            assert_eq!(
                parse_request(&full[..cut], &limits()),
                Parse::Incomplete {
                    expects_continue: false
                },
                "cut at {cut}"
            );
        }
        assert!(matches!(parse_request(full, &limits()), Parse::Ready(_)));
    }

    #[test]
    fn expect_continue_is_flagged_once_the_head_is_in() {
        let head = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\nExpect: 100-continue\r\n\r\n";
        assert_eq!(
            parse_request(head, &limits()),
            Parse::Incomplete {
                expects_continue: true
            }
        );
    }

    #[test]
    fn connection_negotiation_follows_version_defaults() {
        let close11 = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let plain10 = b"GET / HTTP/1.0\r\n\r\n";
        let ka10 = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        for (buf, expect) in [(&close11[..], false), (plain10, false), (ka10, true)] {
            match parse_request(buf, &limits()) {
                Parse::Ready(req) => assert_eq!(req.keep_alive, expect),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn limit_violations_get_the_right_statuses() {
        let tight = Limits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            parse_request(long_head.as_bytes(), &tight),
            Parse::Bad(HttpError { status: 431, .. })
        ));
        // An unterminated head that already blew the budget is also 431,
        // not Incomplete: waiting can never help.
        let unterminated = "G".repeat(100);
        assert!(matches!(
            parse_request(unterminated.as_bytes(), &tight),
            Parse::Bad(HttpError { status: 431, .. })
        ));
        let big_body = b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        assert!(matches!(
            parse_request(big_body, &tight),
            Parse::Bad(HttpError { status: 413, .. })
        ));
        let chunked = b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            parse_request(chunked, &tight),
            Parse::Bad(HttpError { status: 501, .. })
        ));
    }

    #[test]
    fn malformed_heads_are_400s() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"GET / HTTP/1.1\r\nExpect: 200-maybe\r\n\r\n",
            b"\xff\xff\xff\xff\r\n\r\n",
        ] {
            match parse_request(bad, &limits()) {
                Parse::Bad(err) => assert!(
                    (400..=417).contains(&err.status),
                    "{err:?} for {:?}",
                    String::from_utf8_lossy(bad)
                ),
                other => panic!("{other:?} for {:?}", String::from_utf8_lossy(bad)),
            }
        }
    }

    #[test]
    fn unknown_versions_are_505() {
        assert!(matches!(
            parse_request(b"GET / HTTP/2.0\r\n\r\n", &limits()),
            Parse::Bad(HttpError { status: 505, .. })
        ));
    }

    #[test]
    fn responses_render_with_framing_headers() {
        let bytes = write_response(429, b"{}", true, &[("Retry-After", "1".into())]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let closing = write_response(200, b"x", false, &[]);
        assert!(String::from_utf8(closing)
            .unwrap()
            .contains("Connection: close\r\n"));
    }
}
