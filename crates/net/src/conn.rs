//! Per-connection state machine: nonblocking reads, pipelined dispatch,
//! in-order response writing, and the deadline bookkeeping.
//!
//! A connection owns a read buffer (bytes not yet parsed), a FIFO of
//! in-flight requests (each either waiting on a [`ResponseHandle`] or
//! already rendered), and an output buffer of response bytes awaiting the
//! socket. Responses always leave in request order — HTTP/1.1 pipelining
//! semantics — while the underlying queries run concurrently on the
//! serving runtime.
//!
//! Deadlines:
//!
//! * **read**: a partially received request must complete within
//!   `read_timeout` of the last byte, else `408` and close;
//! * **write**: a response the peer will not drain times out after
//!   `write_timeout` without progress, closing the connection;
//! * **idle**: a keep-alive connection with nothing buffered or in flight
//!   closes silently after `idle_timeout`.
//!
//! The epoch pinning that makes hot swaps graceful lives below this
//! layer: every admitted query is served end to end on the model epoch
//! current at submission, so a connection's in-flight work finishes on
//! its pinned epoch while new requests (on this or any connection) see
//! the new one.

use crate::http::{self, Limits, Parse};
use crate::json;
use crate::metrics::NetCounters;
use mips_core::engine::MipsError;
use mips_core::serve::ResponseHandle;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most requests a single connection may have in flight; beyond this the
/// connection stops reading until responses drain (pipelining
/// backpressure).
pub(crate) const MAX_PIPELINE: usize = 64;

/// The per-connection deadline configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadlines {
    pub(crate) read: Duration,
    pub(crate) write: Duration,
    pub(crate) idle: Duration,
}

/// What the router decided for one parsed request.
pub(crate) enum Dispatched {
    /// The response is already known (metrics, errors, admin calls).
    Immediate {
        status: u16,
        body: String,
        extra: Vec<(&'static str, String)>,
    },
    /// The request was admitted onto the serving runtime; the response
    /// materializes when the handle finishes.
    Query(ResponseHandle),
}

/// The routing hook the event loop injects into each connection.
pub(crate) trait Dispatch {
    fn dispatch(&self, request: &http::Request) -> Dispatched;
}

/// A rendered-but-unsent response: status, body, extra headers.
type Rendered = (u16, String, Vec<(&'static str, String)>);

/// One in-flight request slot. Exactly one of `handle`/`ready` is `Some`
/// until the slot is popped.
struct Slot {
    handle: Option<ResponseHandle>,
    ready: Option<Rendered>,
    keep_alive: bool,
}

/// One accepted connection.
pub(crate) struct Conn {
    stream: TcpStream,
    counters: Arc<NetCounters>,
    /// Received, not-yet-parsed bytes.
    buf: Vec<u8>,
    /// Rendered response bytes awaiting the socket.
    out: Vec<u8>,
    out_pos: usize,
    inflight: VecDeque<Slot>,
    /// Instant of the last byte read (arms the read/idle deadlines).
    last_read: Instant,
    /// Instant of the last write progress (arms the write deadline).
    last_write: Instant,
    /// Whether the last parse attempt left a partial request in `buf`.
    reading_partial: bool,
    /// Whether the interim `100 Continue` was already sent for the
    /// currently arriving request.
    sent_continue: bool,
    /// No more reads/parses; flush `out`, settle `inflight`, then close.
    closing: bool,
    closed: bool,
}

impl Conn {
    pub(crate) fn new(
        stream: TcpStream,
        counters: Arc<NetCounters>,
        now: Instant,
    ) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            counters,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            inflight: VecDeque::new(),
            last_read: now,
            last_write: now,
            reading_partial: false,
            sent_continue: false,
            closing: false,
            closed: false,
        })
    }

    /// A connection refused at the door: born with a prebuilt `503` and no
    /// read path, it exists only to deliver the shed notice.
    pub(crate) fn shed(
        stream: TcpStream,
        counters: Arc<NetCounters>,
        now: Instant,
    ) -> std::io::Result<Conn> {
        let mut conn = Conn::new(stream, counters, now)?;
        let body = json::encode_error(503, "connection limit reached; retry shortly");
        conn.enqueue_response(503, &body, &[("Retry-After", "1".to_string())], false);
        conn.closing = true;
        Ok(conn)
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether any admitted query is still unanswered.
    pub(crate) fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Quiescent for drain purposes: nothing in flight, nothing buffered
    /// to write.
    pub(crate) fn drained(&self) -> bool {
        self.inflight.is_empty() && self.out_pos >= self.out.len()
    }

    /// Advances the connection one step. Returns `true` when any progress
    /// was made (bytes moved or a state change), which the event loop uses
    /// to pace its idle sleeping. With `draining` set, no new requests are
    /// read or parsed — in-flight work settles and flushes, nothing else.
    pub(crate) fn tick(
        &mut self,
        router: &dyn Dispatch,
        limits: &Limits,
        deadlines: &Deadlines,
        now: Instant,
        draining: bool,
    ) -> bool {
        if self.closed {
            return false;
        }
        let mut progress = false;
        progress |= self.settle_inflight();
        progress |= self.flush(deadlines, now);
        if self.closed {
            return progress;
        }
        if self.closing {
            if self.inflight.is_empty() && self.out_pos >= self.out.len() {
                self.closed = true;
                progress = true;
            }
            return progress;
        }
        if !draining && self.inflight.len() < MAX_PIPELINE {
            progress |= self.fill(router, limits, deadlines, now);
        }
        progress
    }

    /// Moves finished in-flight responses (front of the FIFO only — wire
    /// order) into the output buffer.
    fn settle_inflight(&mut self) -> bool {
        let mut progress = false;
        loop {
            let front_ready = match self.inflight.front_mut() {
                None => break,
                Some(slot) => {
                    if slot.ready.is_none() {
                        if let Some(handle) = slot.handle.take() {
                            if handle.is_finished() {
                                // is_finished => wait() returns without
                                // blocking.
                                slot.ready = Some(render_query_outcome(handle.wait()));
                            } else {
                                slot.handle = Some(handle);
                            }
                        }
                    }
                    slot.ready.is_some()
                }
            };
            if !front_ready {
                break;
            }
            if let Some(slot) = self.inflight.pop_front() {
                if let Some((status, body, extra)) = slot.ready {
                    self.enqueue_response(status, &body, &extra, slot.keep_alive);
                    if !slot.keep_alive {
                        self.closing = true;
                    }
                }
                progress = true;
            }
        }
        progress
    }

    /// Renders a response into the output buffer and counts it.
    fn enqueue_response(
        &mut self,
        status: u16,
        body: &str,
        extra: &[(&str, String)],
        keep_alive: bool,
    ) {
        let bytes = http::write_response(status, body.as_bytes(), keep_alive, extra);
        self.out.extend_from_slice(&bytes);
        self.counters.count_response(status);
    }

    /// Writes pending output; applies the write deadline.
    fn flush(&mut self, deadlines: &Deadlines, now: Instant) -> bool {
        if self.out_pos >= self.out.len() {
            if !self.out.is_empty() {
                self.out.clear();
                self.out_pos = 0;
            }
            self.last_write = now;
            return false;
        }
        match self.stream.write(&self.out[self.out_pos..]) {
            Ok(0) => {
                self.closed = true;
                true
            }
            Ok(n) => {
                self.out_pos += n;
                self.last_write = now;
                self.counters.add(&self.counters.bytes_written, n as u64);
                if self.out_pos >= self.out.len() {
                    self.out.clear();
                    self.out_pos = 0;
                }
                true
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if now.saturating_duration_since(self.last_write) > deadlines.write {
                    self.counters.add(&self.counters.timeouts, 1);
                    self.closed = true;
                    return true;
                }
                false
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => false,
            Err(_) => {
                self.closed = true;
                true
            }
        }
    }

    /// Reads available bytes and parses as many pipelined requests as the
    /// buffer holds; applies the read and idle deadlines.
    fn fill(
        &mut self,
        router: &dyn Dispatch,
        limits: &Limits,
        deadlines: &Deadlines,
        now: Instant,
    ) -> bool {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer finished sending. A partial request can never
                // complete; pipelined responses still flush before close.
                if !self.buf.is_empty() {
                    self.counters.add(&self.counters.parse_errors, 1);
                    self.refuse(400, "connection closed mid-request");
                }
                self.closing = true;
                true
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.last_read = now;
                self.counters.add(&self.counters.bytes_read, n as u64);
                self.parse_available(router, limits);
                true
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let since_read = now.saturating_duration_since(self.last_read);
                if self.reading_partial && since_read > deadlines.read {
                    self.counters.add(&self.counters.timeouts, 1);
                    self.refuse(408, "request not completed within the read deadline");
                    true
                } else if !self.reading_partial
                    && self.inflight.is_empty()
                    && self.out_pos >= self.out.len()
                    && since_read > deadlines.idle
                {
                    self.closed = true;
                    true
                } else {
                    false
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => false,
            Err(_) => {
                self.closed = true;
                true
            }
        }
    }

    /// Parses every complete request currently buffered (up to the
    /// pipeline cap), dispatching each.
    fn parse_available(&mut self, router: &dyn Dispatch, limits: &Limits) {
        while !self.closing && self.inflight.len() < MAX_PIPELINE {
            if self.buf.is_empty() {
                self.reading_partial = false;
                break;
            }
            match http::parse_request(&self.buf, limits) {
                Parse::Incomplete { expects_continue } => {
                    self.reading_partial = true;
                    if expects_continue && !self.sent_continue {
                        self.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                        self.sent_continue = true;
                    }
                    break;
                }
                Parse::Bad(err) => {
                    self.counters.add(&self.counters.parse_errors, 1);
                    self.refuse(err.status, &err.message);
                    break;
                }
                Parse::Ready(request) => {
                    self.reading_partial = false;
                    self.sent_continue = false;
                    self.buf.drain(..request.consumed);
                    self.counters.add(&self.counters.http_requests, 1);
                    let slot = match router.dispatch(&request) {
                        Dispatched::Immediate {
                            status,
                            body,
                            extra,
                        } => Slot {
                            handle: None,
                            ready: Some((status, body, extra)),
                            keep_alive: request.keep_alive,
                        },
                        Dispatched::Query(handle) => Slot {
                            handle: Some(handle),
                            ready: None,
                            keep_alive: request.keep_alive,
                        },
                    };
                    let keep_alive = slot.keep_alive;
                    self.inflight.push_back(slot);
                    if !keep_alive {
                        // An explicit close: read nothing further; the
                        // connection drains its in-flight work and closes
                        // once this response flushes.
                        self.closing = true;
                        break;
                    }
                }
            }
        }
    }

    /// Queues a terminal error response (in wire order, after everything
    /// already in flight) and stops reading.
    fn refuse(&mut self, status: u16, message: &str) {
        self.inflight.push_back(Slot {
            handle: None,
            ready: Some((status, json::encode_error(status, message), Vec::new())),
            keep_alive: false,
        });
        self.closing = true;
    }
}

/// Renders a settled query outcome: 200 with the response body, or the
/// error's canonical HTTP status with a JSON error body.
fn render_query_outcome(outcome: Result<mips_core::engine::QueryResponse, MipsError>) -> Rendered {
    match outcome {
        Ok(response) => (200, json::encode_response(&response), Vec::new()),
        Err(error) => {
            let status = error.http_status();
            (
                status,
                json::encode_error(status, &error.to_string()),
                Vec::new(),
            )
        }
    }
}
