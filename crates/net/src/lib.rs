//! The network front door: a dependency-free HTTP/1.1 serving layer over
//! [`MipsServer`].
//!
//! The paper's serving story ends at a library call; a production
//! recommender fields traffic over sockets, with deadlines, admission
//! control, and model swaps under load. This crate adds that wire
//! boundary using nothing but `std` — the same vendored-shim philosophy
//! as `shims/`: the workspace builds offline, and every byte on the wire
//! comes from code in this repository.
//!
//! ## Endpoints
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /query` | A [`QueryRequest`](mips_core::engine::QueryRequest) as JSON; admitted via [`MipsServer::try_submit`], so overload answers `429` + `Retry-After` instead of queueing unboundedly. |
//! | `POST /vector-query` | A [`VectorQueryRequest`](mips_core::engine::VectorQueryRequest) as JSON — the exact top-k for one ad-hoc factor vector, dense (`"vector": [..]`) or sparse (`"vector": {"dim", "indices", "values"}`). Served synchronously via [`Engine::execute_vector`](mips_core::engine::Engine::execute_vector). |
//! | `GET /metrics` | `{"server": ..., "net": ...}` — the full [`ServerMetrics`](mips_core::serve::ServerMetrics) rollup (per-shard counters, `index_scope`, `local_index_builds`, latency quantiles) plus this crate's [`NetMetrics`] connection counters. |
//! | `GET /healthz` | Liveness + the current model epoch. |
//! | `POST /admin/swap` | Pulls a fresh model from the builder-registered [`swap source`](HttpServerBuilder::swap_source) and installs it via [`Engine::swap_model`](mips_core::engine::Engine::swap_model). In-flight requests finish on their pinned epoch; subsequent admissions (any connection) see the new one — graceful drain without a pause. |
//!
//! Typed [`MipsError`]s map onto statuses via
//! [`MipsError::http_status`]; malformed HTTP or JSON is a 4xx from the
//! parser layer, never a panic or a hang.
//!
//! ## Architecture
//!
//! One event-loop thread owns the nonblocking listener and every
//! connection (state machines in `conn.rs`); the compute stays on the
//! [`MipsServer`] worker pool. The loop polls
//! [`ResponseHandle::is_finished`](mips_core::serve::ResponseHandle::is_finished)
//! rather than blocking, so one slow query never stalls other
//! connections, and pipelined requests on one connection run concurrently
//! while their responses leave in order. Pacing is adaptive: the loop
//! spins only while work is in flight, sleeps exponentially (capped at
//! 2ms) when idle.
//!
//! ```
//! use mips_core::engine::EngineBuilder;
//! use mips_core::serve::ServerBuilder;
//! use mips_data::synth::{synth_model, SynthConfig};
//! use mips_net::{client::Client, HttpServerBuilder};
//! use std::sync::Arc;
//!
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 60, num_items: 80, num_factors: 8, ..SynthConfig::default()
//! }));
//! let engine = Arc::new(
//!     EngineBuilder::new().model(model).with_default_backends().build().unwrap(),
//! );
//! let server = Arc::new(
//!     ServerBuilder::new().engine(engine).shards(2).workers(1).build().unwrap(),
//! );
//! let http = HttpServerBuilder::new().server(server).build().unwrap();
//! let mut client = Client::connect(http.local_addr()).unwrap();
//! let response = client
//!     .request("POST", "/query", Some("{\"k\": 3, \"users\": [0, 7]}"))
//!     .unwrap();
//! assert_eq!(response.status, 200);
//! http.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;

mod conn;
mod metrics;

pub use metrics::NetMetrics;

use conn::{Conn, Deadlines, Dispatch, Dispatched};
use http::Limits;
use metrics::NetCounters;
use mips_core::engine::MipsError;
use mips_core::serve::{JsonWriter, MipsServer};
use mips_data::MfModel;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where `POST /admin/swap` gets its replacement model: typically a
/// closure that loads the latest retrained factors from disk or an
/// in-memory registry. Errors are reported to the caller as a 500.
pub type SwapSource = Arc<dyn Fn() -> Result<Arc<MfModel>, String> + Send + Sync>;

/// Tunables of the front door.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Most simultaneous connections; excess accepts are shed with `503`.
    pub max_connections: usize,
    /// Largest request head accepted (`431` beyond).
    pub max_head_bytes: usize,
    /// Largest request body accepted (`413` beyond).
    pub max_body_bytes: usize,
    /// A partially received request must complete within this of its last
    /// byte (`408` + close beyond).
    pub read_timeout: Duration,
    /// A response making no write progress for this long condemns the
    /// connection.
    pub write_timeout: Duration,
    /// Keep-alive connections with nothing pending close after this.
    pub idle_timeout: Duration,
    /// At shutdown, how long in-flight requests get to settle and flush
    /// before connections are force-closed.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Step-by-step assembly of an [`HttpServer`].
#[derive(Default)]
pub struct HttpServerBuilder {
    server: Option<Arc<MipsServer>>,
    swap_source: Option<SwapSource>,
    config: NetConfig,
}

impl HttpServerBuilder {
    /// An empty builder with default tunables.
    pub fn new() -> HttpServerBuilder {
        HttpServerBuilder::default()
    }

    /// The serving runtime to front. Shared: the same server can keep
    /// taking in-process `submit` calls alongside the socket traffic.
    pub fn server(mut self, server: Arc<MipsServer>) -> HttpServerBuilder {
        self.server = Some(server);
        self
    }

    /// Registers the model source behind `POST /admin/swap`. Without one,
    /// the endpoint answers `501`.
    pub fn swap_source(
        mut self,
        source: impl Fn() -> Result<Arc<MfModel>, String> + Send + Sync + 'static,
    ) -> HttpServerBuilder {
        self.swap_source = Some(Arc::new(source));
        self
    }

    /// Sets the bind address (default `127.0.0.1:0`).
    pub fn addr(mut self, addr: impl Into<String>) -> HttpServerBuilder {
        self.config.addr = addr.into();
        self
    }

    /// Sets the connection limit.
    pub fn max_connections(mut self, max: usize) -> HttpServerBuilder {
        self.config.max_connections = max;
        self
    }

    /// Sets the read deadline for partially received requests.
    pub fn read_timeout(mut self, timeout: Duration) -> HttpServerBuilder {
        self.config.read_timeout = timeout;
        self
    }

    /// Sets the write-progress deadline.
    pub fn write_timeout(mut self, timeout: Duration) -> HttpServerBuilder {
        self.config.write_timeout = timeout;
        self
    }

    /// Sets the keep-alive idle deadline.
    pub fn idle_timeout(mut self, timeout: Duration) -> HttpServerBuilder {
        self.config.idle_timeout = timeout;
        self
    }

    /// Sets the shutdown drain budget.
    pub fn drain_timeout(mut self, timeout: Duration) -> HttpServerBuilder {
        self.config.drain_timeout = timeout;
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: NetConfig) -> HttpServerBuilder {
        self.config = config;
        self
    }

    /// Validates the assembly, binds the listener, spawns the event-loop
    /// thread, and returns the running front door.
    pub fn build(self) -> Result<HttpServer, MipsError> {
        let server = self
            .server
            .ok_or_else(|| MipsError::InvalidConfig("an HTTP server needs a MipsServer".into()))?;
        let config = self.config;
        if config.max_connections == 0 {
            return Err(MipsError::InvalidConfig(
                "max_connections must be at least 1".into(),
            ));
        }
        if config.max_head_bytes < 64 {
            return Err(MipsError::InvalidConfig(
                "max_head_bytes must be at least 64 (a request line must fit)".into(),
            ));
        }
        for (name, value) in [
            ("read_timeout", config.read_timeout),
            ("write_timeout", config.write_timeout),
            ("idle_timeout", config.idle_timeout),
        ] {
            if value.is_zero() {
                return Err(MipsError::InvalidConfig(format!(
                    "{name} must be nonzero (connections would be condemned instantly)"
                )));
            }
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| MipsError::InvalidConfig(format!("binding {}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| MipsError::InvalidConfig(format!("nonblocking listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| MipsError::InvalidConfig(format!("resolving local address: {e}")))?;

        let counters = Arc::new(NetCounters::default());
        let stop = Arc::new(AtomicBool::new(false));
        // The Retry-After hint for 429s: the batch window is how long the
        // runtime may hold work back, so "a beat past it" is the natural
        // earliest retry — floored at 1s, the header's resolution.
        let retry_after = server.options().batch_window.as_secs().max(1).to_string();
        let router = Router {
            server: Arc::clone(&server),
            swap_source: self.swap_source,
            counters: Arc::clone(&counters),
            retry_after,
        };
        let loop_stop = Arc::clone(&stop);
        let loop_counters = Arc::clone(&counters);
        let loop_config = config.clone();
        let thread = std::thread::Builder::new()
            .name("mips-net".to_string())
            .spawn(move || run_loop(listener, router, loop_config, loop_stop, loop_counters))
            .map_err(|e| MipsError::InvalidConfig(format!("spawning net thread: {e}")))?;
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
            counters,
            server,
        })
    }
}

/// The running HTTP front door. Dropping it (or calling
/// [`HttpServer::shutdown`]) stops accepting, drains in-flight work within
/// the configured budget, and joins the event-loop thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    counters: Arc<NetCounters>,
    server: Arc<MipsServer>,
}

impl HttpServer {
    /// Starts assembling a front door.
    pub fn builder() -> HttpServerBuilder {
        HttpServerBuilder::new()
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving runtime behind this front door.
    pub fn server(&self) -> &Arc<MipsServer> {
        &self.server
    }

    /// Snapshot of the connection-level counters.
    pub fn metrics(&self) -> NetMetrics {
        self.counters.snapshot()
    }

    /// Stops accepting, drains in-flight connections (up to
    /// `drain_timeout`), joins the event loop, and returns the final
    /// counters.
    pub fn shutdown(mut self) -> Result<NetMetrics, MipsError> {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.join().map_err(|_| MipsError::WorkerPanicked {
                message: "net event-loop thread exited abnormally".into(),
            })?;
        }
        Ok(self.counters.snapshot())
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.server.worker_count())
            .finish()
    }
}

/// Routes parsed requests onto the serving runtime and the admin surface.
struct Router {
    server: Arc<MipsServer>,
    swap_source: Option<SwapSource>,
    counters: Arc<NetCounters>,
    retry_after: String,
}

fn immediate(status: u16, body: String) -> Dispatched {
    Dispatched::Immediate {
        status,
        body,
        extra: Vec::new(),
    }
}

impl Router {
    fn query(&self, request: &http::Request) -> Dispatched {
        let query = match json::decode_query_request(&request.body) {
            Ok(query) => query,
            Err(message) => return immediate(400, json::encode_error(400, &message)),
        };
        match self.server.try_submit(&query) {
            Ok(handle) => Dispatched::Query(handle),
            Err(error) => {
                let status = error.http_status();
                let mut extra = Vec::new();
                if matches!(error, MipsError::ServerOverloaded { .. }) {
                    self.counters.add(&self.counters.rejected_overload, 1);
                    extra.push(("Retry-After", self.retry_after.clone()));
                }
                Dispatched::Immediate {
                    status,
                    body: json::encode_error(status, &error.to_string()),
                    extra,
                }
            }
        }
    }

    /// `POST /vector-query`: the exact top-k for one ad-hoc factor vector,
    /// dense or sparse (see [`json::decode_vector_query_request`] for the
    /// wire shapes). One point lookup is a different cost class from the
    /// batch `/query` path, so it serves synchronously on the event loop
    /// instead of going through the worker pool's admission queue; the
    /// first sparse-routed query per model epoch also pays the inverted
    /// index's lazy build.
    fn vector_query(&self, request: &http::Request) -> Dispatched {
        let query = match json::decode_vector_query_request(&request.body) {
            Ok(query) => query,
            Err(message) => return immediate(400, json::encode_error(400, &message)),
        };
        match self.server.engine().execute_vector(&query) {
            Ok(response) => immediate(200, json::encode_response(&response)),
            Err(error) => {
                let status = error.http_status();
                immediate(status, json::encode_error(status, &error.to_string()))
            }
        }
    }

    fn metrics_body(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_raw("server", &self.server.metrics().to_json());
        w.field_raw("net", &self.counters.snapshot().to_json());
        w.end_obj();
        w.finish()
    }

    fn healthz_body(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_bool("ok", true);
        w.field_u64("epoch", self.server.engine().epoch());
        w.field_u64("workers", self.server.worker_count() as u64);
        w.end_obj();
        w.finish()
    }

    fn swap(&self) -> Dispatched {
        let Some(source) = &self.swap_source else {
            return immediate(
                501,
                json::encode_error(501, "no swap source configured on this server"),
            );
        };
        let model = match source() {
            Ok(model) => model,
            Err(message) => {
                return immediate(
                    500,
                    json::encode_error(500, &format!("swap source failed: {message}")),
                )
            }
        };
        match self.server.engine().swap_model(model) {
            Ok(epoch) => {
                self.counters.add(&self.counters.admin_swaps, 1);
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.field_bool("swapped", true);
                w.field_u64("epoch", epoch);
                w.field_u64("swaps", self.server.engine().swap_count());
                w.end_obj();
                immediate(200, w.finish())
            }
            Err(error) => {
                let status = error.http_status();
                immediate(status, json::encode_error(status, &error.to_string()))
            }
        }
    }

    fn method_not_allowed(&self, allow: &'static str) -> Dispatched {
        Dispatched::Immediate {
            status: 405,
            body: json::encode_error(405, &format!("method not allowed; use {allow}")),
            extra: vec![("Allow", allow.to_string())],
        }
    }
}

impl Dispatch for Router {
    fn dispatch(&self, request: &http::Request) -> Dispatched {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/query") => self.query(request),
            ("POST", "/vector-query") => self.vector_query(request),
            ("GET", "/metrics") => immediate(200, self.metrics_body()),
            ("GET", "/healthz") => immediate(200, self.healthz_body()),
            ("POST", "/admin/swap") => self.swap(),
            (_, "/query") | (_, "/vector-query") | (_, "/admin/swap") => {
                self.method_not_allowed("POST")
            }
            (_, "/metrics") | (_, "/healthz") => self.method_not_allowed("GET"),
            (_, path) => immediate(
                404,
                json::encode_error(404, &format!("no route for {path}")),
            ),
        }
    }
}

/// Idle-sleep pacing bounds for the event loop: reset small on progress,
/// doubled while idle so a quiet server costs ~no CPU, capped low enough
/// that accept latency stays imperceptible.
const MIN_IDLE_SLEEP: Duration = Duration::from_micros(50);
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(2);
/// How long after the last progress the loop keeps yielding instead of
/// sleeping. A steady request stream re-arms this every burst, so arrivals
/// land on a running loop (no sleep-wake latency — `sleep(50µs)` really
/// costs ~100µs+ with timer slack); a genuinely idle server starts
/// sleeping after one grace period.
const IDLE_GRACE: Duration = Duration::from_millis(1);

fn run_loop(
    listener: TcpListener,
    router: Router,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
) {
    let limits = Limits {
        max_head_bytes: config.max_head_bytes,
        max_body_bytes: config.max_body_bytes,
    };
    let deadlines = Deadlines {
        read: config.read_timeout,
        write: config.write_timeout,
        idle: config.idle_timeout,
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_sleep = MIN_IDLE_SLEEP;
    let mut last_progress = Instant::now();
    while !stop.load(Ordering::Acquire) {
        let now = Instant::now();
        let mut progress = false;
        // Accept everything pending; beyond max_connections, connections
        // are shed with a 503 instead of left dangling in the backlog.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    counters.add(&counters.accepted, 1);
                    if conns.len() >= config.max_connections {
                        counters.add(&counters.shed, 1);
                        if let Ok(conn) = Conn::shed(stream, Arc::clone(&counters), now) {
                            conns.push(conn);
                        }
                    } else if let Ok(conn) = Conn::new(stream, Arc::clone(&counters), now) {
                        conns.push(conn);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let mut any_inflight = false;
        for conn in conns.iter_mut() {
            progress |= conn.tick(&router, &limits, &deadlines, now, false);
            any_inflight |= conn.has_inflight();
        }
        reap_closed(&mut conns, &counters);
        if progress {
            idle_sleep = MIN_IDLE_SLEEP;
            last_progress = now;
        } else if any_inflight || now.saturating_duration_since(last_progress) < IDLE_GRACE {
            // Responses can finish (and new requests arrive) any
            // microsecond; yield the timeslice to the worker pool instead
            // of sleeping past the event.
            std::thread::yield_now();
        } else {
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(MAX_IDLE_SLEEP);
        }
    }

    // Graceful drain: stop accepting (listener drops), let in-flight
    // requests settle and flush, close idle connections, force-close
    // whatever remains at the deadline.
    drop(listener);
    let deadline = Instant::now() + config.drain_timeout;
    while !conns.is_empty() && Instant::now() < deadline {
        let now = Instant::now();
        let mut progress = false;
        for conn in conns.iter_mut() {
            progress |= conn.tick(&router, &limits, &deadlines, now, true);
        }
        let before = conns.len();
        conns.retain(|conn| !conn.is_closed() && !conn.drained());
        counters.add(&counters.closed, (before - conns.len()) as u64);
        if !progress {
            std::thread::yield_now();
        }
    }
    counters.add(&counters.closed, conns.len() as u64);
}

/// Drops closed connections and counts them.
fn reap_closed(conns: &mut Vec<Conn>, counters: &NetCounters) {
    let before = conns.len();
    conns.retain(|conn| !conn.is_closed());
    counters.add(&counters.closed, (before - conns.len()) as u64);
}
