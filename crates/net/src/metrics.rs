//! Connection-level counters, folded into the `/metrics` rollup.

use mips_core::serve::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters shared by the accept loop and every connection.
#[derive(Default)]
pub(crate) struct NetCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) closed: AtomicU64,
    pub(crate) http_requests: AtomicU64,
    pub(crate) responses_2xx: AtomicU64,
    pub(crate) responses_4xx: AtomicU64,
    pub(crate) responses_5xx: AtomicU64,
    pub(crate) rejected_overload: AtomicU64,
    pub(crate) parse_errors: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) admin_swaps: AtomicU64,
}

impl NetCounters {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Tallies a sent response into its status class.
    pub(crate) fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.add(&self.responses_2xx, 1),
            400..=499 => self.add(&self.responses_4xx, 1),
            500..=599 => self.add(&self.responses_5xx, 1),
            _ => {}
        }
    }

    pub(crate) fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            http_requests: self.http_requests.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            admin_swaps: self.admin_swaps.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of the front door's connection-level counters,
/// returned by [`HttpServer::metrics`](crate::HttpServer::metrics) and
/// embedded in the `GET /metrics` body alongside the
/// [`ServerMetrics`](mips_core::serve::ServerMetrics) rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Connections accepted (shed ones included).
    pub accepted: u64,
    /// Connections refused with `503` because `max_connections` was
    /// reached.
    pub shed: u64,
    /// Connections fully closed.
    pub closed: u64,
    /// Complete HTTP requests parsed off the wire.
    pub http_requests: u64,
    /// Responses sent with a 2xx status.
    pub responses_2xx: u64,
    /// Responses sent with a 4xx status.
    pub responses_4xx: u64,
    /// Responses sent with a 5xx status.
    pub responses_5xx: u64,
    /// Queries bounced by backpressure (`429 Too Many Requests`).
    pub rejected_overload: u64,
    /// Requests refused for framing/syntax errors (the connection closes).
    pub parse_errors: u64,
    /// Connections condemned by a read or write deadline.
    pub timeouts: u64,
    /// Payload bytes read off sockets.
    pub bytes_read: u64,
    /// Payload bytes written to sockets.
    pub bytes_written: u64,
    /// Successful `POST /admin/swap` calls.
    pub admin_swaps: u64,
}

impl NetMetrics {
    /// Renders the counters as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// [`NetMetrics::to_json`], but composing into an existing writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_u64("accepted", self.accepted);
        w.field_u64("shed", self.shed);
        w.field_u64("closed", self.closed);
        w.field_u64("http_requests", self.http_requests);
        w.field_u64("responses_2xx", self.responses_2xx);
        w.field_u64("responses_4xx", self.responses_4xx);
        w.field_u64("responses_5xx", self.responses_5xx);
        w.field_u64("rejected_overload", self.rejected_overload);
        w.field_u64("parse_errors", self.parse_errors);
        w.field_u64("timeouts", self.timeouts);
        w.field_u64("bytes_read", self.bytes_read);
        w.field_u64("bytes_written", self.bytes_written);
        w.field_u64("admin_swaps", self.admin_swaps);
        w.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json_round_trip() {
        let counters = NetCounters::default();
        counters.add(&counters.accepted, 3);
        counters.count_response(200);
        counters.count_response(404);
        counters.count_response(503);
        counters.count_response(100); // interim: uncounted
        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.responses_2xx, 1);
        assert_eq!(snap.responses_4xx, 1);
        assert_eq!(snap.responses_5xx, 1);
        let json = snap.to_json();
        assert!(json.contains("\"accepted\":3"));
        assert!(json.contains("\"responses_4xx\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
