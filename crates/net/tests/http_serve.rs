//! Live loopback suite: a real listener, real sockets, real deadline and
//! admission behavior.
//!
//! Each test boots an [`HttpServer`] on an ephemeral port and drives it
//! with the crate's blocking [`Client`]. Wire answers are compared
//! bit-for-bit against in-process [`Engine::execute`] — the socket layer
//! must add framing, never change results.

use mips_core::engine::{Engine, EngineBuilder, QueryRequest};
use mips_core::serve::{MipsServer, ServerBuilder};
use mips_data::synth::{synth_model, SynthConfig};
use mips_data::MfModel;
use mips_net::client::Client;
use mips_net::json::{self, Json};
use mips_net::{HttpServer, HttpServerBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model(users: usize, items: usize, seed: u64) -> Arc<MfModel> {
    Arc::new(synth_model(&SynthConfig {
        num_users: users,
        num_items: items,
        num_factors: 8,
        seed,
        ..SynthConfig::default()
    }))
}

fn engine(model: &Arc<MfModel>) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(model))
            .with_default_backends()
            .build()
            .unwrap(),
    )
}

/// A small default stack: 80 users, 100 items, 2 shards, 2 workers.
fn stack() -> (Arc<Engine>, Arc<MipsServer>, HttpServer) {
    let engine = engine(&model(80, 100, 11));
    let server = Arc::new(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(2)
            .workers(2)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .unwrap();
    (engine, server, http)
}

/// Extracts `results` from a wire response as `(items, score_bits)` rows.
fn wire_results(body: &str) -> Vec<(Vec<u32>, Vec<u64>)> {
    let doc = json::parse(body).unwrap();
    doc.get("results")
        .and_then(Json::as_arr)
        .expect("results array")
        .iter()
        .map(|row| {
            let items = row
                .get("items")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|i| i.as_u64().unwrap() as u32)
                .collect();
            let scores = row
                .get("scores")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|s| s.as_num().unwrap().to_bits())
                .collect();
            (items, scores)
        })
        .collect()
}

#[test]
fn wire_queries_are_bit_identical_to_in_process_execution() {
    let (engine, _server, http) = stack();
    let mut client = Client::connect(http.local_addr()).unwrap();
    let cases = [
        (
            "{\"k\": 5, \"users\": [3, 0, 9, 3]}",
            QueryRequest::top_k(5).users(vec![3, 0, 9, 3]),
        ),
        ("{\"k\": 1}", QueryRequest::top_k(1)),
        (
            "{\"k\": 4, \"users\": {\"range\": [10, 30]}}",
            QueryRequest::top_k(4).users_range(10..30),
        ),
        (
            "{\"k\": 3, \"users\": [2], \"exclude\": {\"2\": [0, 1, 2, 3]}}",
            QueryRequest::top_k(3).users(vec![2]).exclude(
                mips_core::engine::ExclusionSet::from_pairs((0..4).map(|i| (2usize, i as u32))),
            ),
        ),
    ];
    for (wire, request) in cases {
        let response = client.request("POST", "/query", Some(wire)).unwrap();
        assert_eq!(response.status, 200, "{wire}: {}", response.body);
        let expected = engine.execute(&request).unwrap();
        let got = wire_results(&response.body);
        assert_eq!(got.len(), expected.results.len(), "{wire}");
        for (row, want) in got.iter().zip(&expected.results) {
            assert_eq!(row.0, want.items, "{wire}");
            let want_bits: Vec<u64> = want.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(
                row.1, want_bits,
                "{wire}: scores must survive the wire exactly"
            );
        }
        let doc = json::parse(&response.body).unwrap();
        assert_eq!(
            doc.get("epoch").and_then(Json::as_u64),
            Some(expected.epoch)
        );
        assert!(doc.get("backend").and_then(Json::as_str).is_some());
        // The default stack runs pure f64; the wire must say so.
        assert_eq!(
            doc.get("precision").and_then(Json::as_str),
            Some("f64"),
            "{wire}"
        );
    }
    http.shutdown().unwrap();
}

#[test]
fn vector_queries_serve_both_encodings_bit_identically() {
    let (engine, _server, http) = stack();
    let mut client = Client::connect(http.local_addr()).unwrap();

    // Dense payload = a stored user row: the wire answer must match
    // serving that user through the batch path, bit for bit.
    let row: Vec<f64> = engine.model().users().row(3).to_vec();
    let dense_body = format!(
        "{{\"k\": 5, \"vector\": [{}]}}",
        row.iter()
            .map(|v| format!("{v:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let response = client
        .request("POST", "/vector-query", Some(&dense_body))
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let expected = engine
        .execute_with("bmm", &QueryRequest::top_k(5).users(vec![3]))
        .unwrap();
    let got = wire_results(&response.body);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, expected.results[0].items);
    let want_bits: Vec<u64> = expected.results[0]
        .scores
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_eq!(got[0].1, want_bits, "scores must survive the wire exactly");
    let doc = json::parse(&response.body).unwrap();
    // The default stack registers the sparse backend, which owns the
    // point-lookup path.
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("Sparse-II"));

    // A sparse payload and its densified twin answer identically.
    let sparse_body =
        "{\"k\": 3, \"vector\": {\"dim\": 8, \"indices\": [1, 6], \"values\": [0.75, -1.25]}}";
    let dense_twin = "{\"k\": 3, \"vector\": [0, 0.75, 0, 0, 0, 0, -1.25, 0]}";
    let via_sparse = client
        .request("POST", "/vector-query", Some(sparse_body))
        .unwrap();
    let via_dense = client
        .request("POST", "/vector-query", Some(dense_twin))
        .unwrap();
    assert_eq!(via_sparse.status, 200, "{}", via_sparse.body);
    assert_eq!(via_dense.status, 200, "{}", via_dense.body);
    assert_eq!(
        wire_results(&via_sparse.body),
        wire_results(&via_dense.body),
        "sparse and dense encodings must be interchangeable on the wire"
    );

    // Typed errors reach the wire with their statuses.
    let cases = [
        ("{\"k\": 0, \"vector\": [0]}", "invalid k"),
        ("{\"k\": 1, \"vector\": [1, 2]}", "invalid query vector"),
        (
            "{\"k\": 1, \"vector\": {\"dim\": 8, \"indices\": [3, 1], \"values\": [1, 1]}}",
            "invalid sparse vector",
        ),
    ];
    for (body, fragment) in cases {
        let response = client.request("POST", "/vector-query", Some(body)).unwrap();
        assert_eq!(response.status, 400, "{body}: {}", response.body);
        let doc = json::parse(&response.body).unwrap();
        let message = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(
            message.contains(fragment),
            "{body}: {message:?} should mention {fragment:?}"
        );
    }
    let wrong_method = client.request("GET", "/vector-query", None).unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    http.shutdown().unwrap();
}

#[test]
fn forced_f32_rescore_is_bit_identical_and_announced_on_the_wire() {
    // A mixed-precision stack must change how answers are computed — f32
    // screen, exact f64 rescore — without changing a single reported bit,
    // and both the response and /metrics must announce the mode.
    let model = model(80, 100, 11);
    let f64_engine = engine(&model);
    let f32_engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&model))
            .with_default_backends()
            .precision(mips_core::precision::Precision::F32Rescore)
            .build()
            .unwrap(),
    );
    let server = Arc::new(
        ServerBuilder::new()
            .engine(Arc::clone(&f32_engine))
            .shards(2)
            .workers(2)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .unwrap();
    let mut client = Client::connect(http.local_addr()).unwrap();

    let wire = "{\"k\": 5, \"users\": [3, 0, 9, 3]}";
    let response = client.request("POST", "/query", Some(wire)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = json::parse(&response.body).unwrap();
    assert_eq!(
        doc.get("precision").and_then(Json::as_str),
        Some("f32-rescore"),
        "the response must carry the serving plan's precision"
    );
    // Bit-identity against the pure-f64 engine, across the wire.
    let expected = f64_engine
        .execute(&QueryRequest::top_k(5).users(vec![3, 0, 9, 3]))
        .unwrap();
    let got = wire_results(&response.body);
    for (row, want) in got.iter().zip(&expected.results) {
        assert_eq!(row.0, want.items);
        let want_bits: Vec<u64> = want.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(row.1, want_bits, "f32-rescore must not move a single bit");
    }

    let metrics = client.request("GET", "/metrics", None).unwrap();
    let doc = json::parse(&metrics.body).unwrap();
    let server_side = doc.get("server").expect("server section");
    assert_eq!(
        server_side.get("precision").and_then(Json::as_str),
        Some("f32-rescore")
    );
    let f32_batches: u64 = server_side
        .get("shards")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|s| s.get("f32_batches").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(
        f32_batches >= 1,
        "served batches must be attributed to the f32 screen path"
    );
    http.shutdown().unwrap();
}

#[test]
fn forced_i8_rescore_is_bit_identical_and_announced_on_the_wire() {
    // The int8 tier under the f32 one: integer screen, exact f64 rescore,
    // same bit-identity contract, and /metrics must attribute batches and
    // screen candidate/survivor counts to the i8 lanes. The engine is
    // pinned to BMM — with the full registry, OPTIMUS may legitimately
    // hand a forced-i8 plan to a screenless backend (which serves
    // f64-direct), and this test is about the i8 lanes, not the planner.
    let model = model(80, 100, 11);
    let f64_engine = engine(&model);
    let registry = mips_core::engine::BackendRegistry::with_defaults();
    let bmm = registry
        .factories()
        .iter()
        .find(|f| f.key() == "bmm")
        .expect("bmm is a default backend");
    let i8_engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&model))
            .register_arc(Arc::clone(bmm))
            .precision(mips_core::precision::Precision::I8Rescore)
            .build()
            .unwrap(),
    );
    let server = Arc::new(
        ServerBuilder::new()
            .engine(Arc::clone(&i8_engine))
            .shards(2)
            .workers(2)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .unwrap();
    let mut client = Client::connect(http.local_addr()).unwrap();

    let wire = "{\"k\": 5, \"users\": [3, 0, 9, 3]}";
    let response = client.request("POST", "/query", Some(wire)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = json::parse(&response.body).unwrap();
    assert_eq!(
        doc.get("precision").and_then(Json::as_str),
        Some("i8-rescore"),
        "the response must carry the serving plan's precision"
    );
    let expected = f64_engine
        .execute(&QueryRequest::top_k(5).users(vec![3, 0, 9, 3]))
        .unwrap();
    let got = wire_results(&response.body);
    for (row, want) in got.iter().zip(&expected.results) {
        assert_eq!(row.0, want.items);
        let want_bits: Vec<u64> = want.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(row.1, want_bits, "i8-rescore must not move a single bit");
    }

    let metrics = client.request("GET", "/metrics", None).unwrap();
    let doc = json::parse(&metrics.body).unwrap();
    let server_side = doc.get("server").expect("server section");
    assert_eq!(
        server_side.get("precision").and_then(Json::as_str),
        Some("i8-rescore")
    );
    assert!(
        server_side
            .get("i8_batches")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "served batches must be attributed to the i8 screen path"
    );
    let candidates = server_side
        .get("screen_candidates_i8")
        .and_then(Json::as_u64)
        .unwrap();
    let survivors = server_side
        .get("screen_survivors_i8")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        candidates >= 1,
        "the i8 screen must report evaluated scores"
    );
    assert!(survivors <= candidates);
    assert_eq!(
        server_side
            .get("screen_candidates_f32")
            .and_then(Json::as_u64),
        Some(0),
        "no f32 screen work under a forced i8 engine"
    );
    http.shutdown().unwrap();
}

#[test]
fn metrics_and_healthz_expose_the_rollup() {
    let (_engine, server, http) = stack();
    let mut client = Client::connect(http.local_addr()).unwrap();
    for _ in 0..3 {
        let r = client
            .request("POST", "/query", Some("{\"k\": 2, \"users\": [1]}"))
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let doc = json::parse(&health.body).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(0));

    let metrics = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let doc = json::parse(&metrics.body).unwrap();
    let server_side = doc.get("server").expect("server section");
    assert_eq!(server_side.get("completed").and_then(Json::as_u64), Some(3));
    assert_eq!(
        server_side.get("index_scope").and_then(Json::as_str),
        Some("global")
    );
    assert!(server_side.get("shards").and_then(Json::as_arr).is_some());
    let net_side = doc.get("net").expect("net section");
    // The /metrics request itself is parsed before its response counts.
    assert!(
        net_side
            .get("http_requests")
            .and_then(Json::as_u64)
            .unwrap()
            >= 5
    );
    assert!(
        net_side
            .get("responses_2xx")
            .and_then(Json::as_u64)
            .unwrap()
            >= 4
    );
    assert_eq!(net_side.get("accepted").and_then(Json::as_u64), Some(1));

    // The in-process snapshot agrees with the wire counters.
    assert_eq!(server.metrics().completed, 3);
    assert!(http.metrics().http_requests >= 5);
    http.shutdown().unwrap();
}

#[test]
fn typed_errors_map_to_their_statuses_on_the_wire() {
    let (_engine, _server, http) = stack();
    let mut client = Client::connect(http.local_addr()).unwrap();
    // (body, expected status, fragment of the error message)
    let cases = [
        ("{\"k\": 0}", 400, "invalid k"),
        ("{\"k\": 101}", 400, "invalid k"),
        ("{\"k\": 1, \"users\": [80]}", 400, "out of range"),
        ("{\"k\": 1, \"users\": []}", 400, "no users"),
        (
            "{\"k\": 1, \"exclude\": {\"0\": [100]}}",
            400,
            "out of range",
        ),
        ("{\"k\": 1, \"typo\": 1}", 400, "unknown field"),
        ("not json at all", 400, "invalid literal"),
        ("{\"k\": 1", 400, "expected ','"),
    ];
    for (body, status, fragment) in cases {
        let response = client.request("POST", "/query", Some(body)).unwrap();
        assert_eq!(response.status, status, "{body}: {}", response.body);
        let doc = json::parse(&response.body).unwrap();
        let message = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(
            message.contains(fragment),
            "{body}: {message:?} should mention {fragment:?}"
        );
        assert_eq!(
            doc.get("status").and_then(Json::as_u64),
            Some(status as u64)
        );
    }
    // Routing errors.
    let missing = client.request("GET", "/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client.request("DELETE", "/query", Some("{}")).unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    let wrong_get = client.request("POST", "/metrics", None).unwrap();
    assert_eq!(wrong_get.status, 405);
    assert_eq!(wrong_get.header("allow"), Some("GET"));
    // Swap without a configured source is 501, not a crash.
    let swap = client.request("POST", "/admin/swap", None).unwrap();
    assert_eq!(swap.status, 501);
    http.shutdown().unwrap();
}

#[test]
fn pipelined_requests_come_back_in_order() {
    let (engine, _server, http) = stack();
    let mut client = Client::connect(http.local_addr()).unwrap();
    let depth = 12;
    for i in 0..depth {
        client
            .send(
                "POST",
                "/query",
                Some(&format!(
                    "{{\"k\": {}, \"users\": [{}]}}",
                    i % 7 + 1,
                    i % 80
                )),
            )
            .unwrap();
    }
    for i in 0..depth {
        let response = client.recv().unwrap();
        assert_eq!(response.status, 200, "request {i}");
        let expected = engine
            .execute(&QueryRequest::top_k(i % 7 + 1).users(vec![i % 80]))
            .unwrap();
        let got = wire_results(&response.body);
        assert_eq!(
            got[0].0, expected.results[0].items,
            "request {i} out of order"
        );
    }
    http.shutdown().unwrap();
}

#[test]
fn malformed_http_is_refused_and_the_connection_condemned() {
    let (_engine, _server, http) = stack();
    // Garbage head.
    let mut client = Client::connect(http.local_addr()).unwrap();
    client.send_raw(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let response = client.recv().unwrap();
    assert_eq!(response.status, 400);
    assert!(client.recv().is_err(), "connection must close after a 400");

    // Oversized declared body: refused from the header alone.
    let mut client = Client::connect(http.local_addr()).unwrap();
    client
        .send_raw(b"POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    assert_eq!(client.recv().unwrap().status, 413);

    // Chunked encoding: explicit 501.
    let mut client = Client::connect(http.local_addr()).unwrap();
    client
        .send_raw(b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    assert_eq!(client.recv().unwrap().status, 501);

    // EOF mid-request: 400, then close.
    let mut client = Client::connect(http.local_addr()).unwrap();
    client
        .send_raw(b"POST /query HTTP/1.1\r\nContent-")
        .unwrap();
    client.finish_writes().unwrap();
    assert_eq!(client.recv().unwrap().status, 400);
    assert!(client.recv().is_err());

    let net = http.metrics();
    assert!(net.parse_errors >= 4, "{net:?}");
    http.shutdown().unwrap();
}

#[test]
fn read_deadline_answers_408_for_stalled_requests() {
    let engine = engine(&model(40, 50, 3));
    let server = Arc::new(
        ServerBuilder::new()
            .engine(engine)
            .workers(1)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(server)
        .read_timeout(Duration::from_millis(80))
        .build()
        .unwrap();
    let mut client = Client::connect(http.local_addr()).unwrap();
    // A head that never finishes.
    client
        .send_raw(b"POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"k")
        .unwrap();
    let started = Instant::now();
    let response = client.recv().unwrap();
    assert_eq!(response.status, 408);
    assert!(
        started.elapsed() >= Duration::from_millis(60),
        "the deadline must actually elapse"
    );
    assert!(client.recv().is_err(), "connection closes after the 408");
    assert!(http.metrics().timeouts >= 1);
    http.shutdown().unwrap();
}

#[test]
fn overload_answers_429_with_retry_after() {
    // One worker, a queue of two sub-requests, and a model big enough
    // that an all-users request holds the worker for a while.
    let engine = engine(&model(1200, 900, 5));
    let server = Arc::new(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(1)
            .workers(1)
            .queue_capacity(2)
            .batching(false)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .unwrap();
    // Occupy the worker and fill the queue from in-process submissions.
    let busy = server.submit(&QueryRequest::top_k(200)).unwrap();
    let queued_a = server.submit(&QueryRequest::top_k(200)).unwrap();
    let queued_b = server.submit(&QueryRequest::top_k(200)).unwrap();
    // The wire sees backpressure, not a blocking submit.
    let mut client = Client::connect(http.local_addr()).unwrap();
    let response = client
        .request("POST", "/query", Some("{\"k\": 1, \"users\": [0]}"))
        .unwrap();
    assert_eq!(response.status, 429, "{}", response.body);
    assert_eq!(response.header("retry-after"), Some("1"));
    let doc = json::parse(&response.body).unwrap();
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("overloaded"));
    // The refused request is visible in both metric rollups.
    assert!(http.metrics().rejected_overload >= 1);
    assert!(server.metrics().rejected >= 1);
    busy.wait().unwrap();
    queued_a.wait().unwrap();
    queued_b.wait().unwrap();
    // With the queue drained the same query is admitted.
    let response = client
        .request("POST", "/query", Some("{\"k\": 1, \"users\": [0]}"))
        .unwrap();
    assert_eq!(response.status, 200);
    http.shutdown().unwrap();
}

#[test]
fn connection_limit_sheds_with_503() {
    let (_engine, _server, http) = {
        let engine = engine(&model(40, 50, 7));
        let server = Arc::new(
            ServerBuilder::new()
                .engine(Arc::clone(&engine))
                .workers(1)
                .build()
                .unwrap(),
        );
        let http = HttpServerBuilder::new()
            .server(Arc::clone(&server))
            .max_connections(1)
            .build()
            .unwrap();
        (engine, server, http)
    };
    let mut first = Client::connect(http.local_addr()).unwrap();
    // Complete a request so the connection is registered before the next
    // connect races the accept loop.
    assert_eq!(first.request("GET", "/healthz", None).unwrap().status, 200);
    let mut second = Client::connect(http.local_addr()).unwrap();
    let shed = second.request("GET", "/healthz", None).unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    // The first connection keeps serving.
    assert_eq!(first.request("GET", "/healthz", None).unwrap().status, 200);
    assert!(http.metrics().shed >= 1);
    http.shutdown().unwrap();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let engine = engine(&model(900, 800, 9));
    let server = Arc::new(
        ServerBuilder::new()
            .engine(Arc::clone(&engine))
            .shards(1)
            .workers(1)
            .build()
            .unwrap(),
    );
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .unwrap();
    let addr = http.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // A query that takes a macroscopic moment, in flight when shutdown
    // lands. The reader runs concurrently: draining a response larger
    // than the socket buffers requires a live reader on the other end.
    client.send("POST", "/query", Some("{\"k\": 400}")).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let reader = std::thread::spawn(move || {
        let response = client.recv().unwrap();
        (response, client)
    });
    let net = http.shutdown().unwrap();
    // Drained, not dropped: the response was written before close.
    let (response, _client) = reader.join().unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(wire_results(&response.body).len(), 900);
    assert_eq!(net.responses_2xx, 1);
    // The listener is gone: new connections are refused.
    assert!(Client::connect(addr).is_err());
}
