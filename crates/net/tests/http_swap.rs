//! Wire-level graceful drain: `POST /admin/swap` rotates models while
//! client threads keep querying over real sockets.
//!
//! This extends the `serve_swap.rs` guarantees to the HTTP boundary:
//!
//! * **Zero failed requests.** Every query issued across ≥ 3 hot swaps
//!   answers `200` — no 5xx, no dropped connections, no wedged reads.
//! * **Per-epoch bit-identity.** Each response carries the epoch it was
//!   served from, and its items and score *bits* equal a sequential
//!   `Engine::execute` on a fresh single-backend engine holding that
//!   epoch's model — the socket adds framing, never drift.
//!
//! A BMM-only engine keeps planning deterministic so fresh reference
//! engines are guaranteed bit-identical per model.

use mips_core::engine::{BmmFactory, Engine, EngineBuilder, QueryRequest};
use mips_core::serve::ServerBuilder;
use mips_data::synth::{synth_model, SynthConfig};
use mips_data::MfModel;
use mips_net::client::Client;
use mips_net::json::{self, Json};
use mips_net::HttpServerBuilder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const USERS: usize = 50;
const ITEMS: usize = 60;

fn model(seed: u64) -> Arc<MfModel> {
    Arc::new(synth_model(&SynthConfig {
        num_users: USERS,
        num_items: ITEMS,
        num_factors: 8,
        seed,
        ..SynthConfig::default()
    }))
}

fn bmm_engine(model: &Arc<MfModel>) -> Arc<Engine> {
    Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(model))
            .register(BmmFactory)
            .build()
            .unwrap(),
    )
}

/// Wire bodies paired with the equivalent in-process request; every entry
/// is valid on every model of the rotation (same user/item counts).
fn corpus() -> Vec<(String, QueryRequest)> {
    vec![
        ("{\"k\": 1}".into(), QueryRequest::top_k(1)),
        ("{\"k\": 7}".into(), QueryRequest::top_k(7)),
        (
            format!("{{\"k\": 3, \"users\": {{\"range\": [0, {USERS}]}}}}"),
            QueryRequest::top_k(3).users_range(0..USERS),
        ),
        (
            format!("{{\"k\": 2, \"users\": [{}, 0, {}]}}", USERS - 1, USERS / 2),
            QueryRequest::top_k(2).users(vec![USERS - 1, 0, USERS / 2]),
        ),
        (
            "{\"k\": 5, \"users\": [3], \"exclude\": {\"3\": [0, 2, 4, 6, 8]}}".into(),
            QueryRequest::top_k(5).users(vec![3]).exclude(
                mips_core::engine::ExclusionSet::from_pairs((0..5u32).map(|i| (3usize, i * 2))),
            ),
        ),
        (
            format!("{{\"k\": {ITEMS}, \"users\": [9]}}"),
            QueryRequest::top_k(ITEMS).users(vec![9]),
        ),
    ]
}

/// One observed wire answer: which corpus entry, which epoch served it,
/// and the exact payload bits.
struct Observed {
    corpus_index: usize,
    epoch: u64,
    results: Vec<(Vec<u32>, Vec<u64>)>,
}

fn decode_observed(corpus_index: usize, body: &str) -> Observed {
    let doc = json::parse(body).unwrap();
    let epoch = doc
        .get("epoch")
        .and_then(Json::as_u64)
        .expect("epoch field");
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array")
        .iter()
        .map(|row| {
            let items = row
                .get("items")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|i| i.as_u64().unwrap() as u32)
                .collect();
            let scores = row
                .get("scores")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|s| s.as_num().unwrap().to_bits())
                .collect();
            (items, scores)
        })
        .collect();
    Observed {
        corpus_index,
        epoch,
        results,
    }
}

#[test]
fn wire_queries_survive_hot_swaps_bit_identically() {
    const SWAPS: usize = 4;
    const CLIENT_THREADS: usize = 4;
    const BURST: usize = 6;

    let models: Vec<Arc<MfModel>> = vec![model(0xA), model(0xB), model(0xC)];
    let engine = bmm_engine(&models[0]);
    let server = Arc::new(
        ServerBuilder::new()
            .engine(engine)
            .shards(2)
            .workers(2)
            .build()
            .unwrap(),
    );

    // The swap source rotates through the models and records each pick;
    // swaps are serialized on one admin connection, so the i-th recorded
    // pick corresponds to the i-th swap response (and its epoch).
    let picked: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let source_models = models.clone();
    let source_picked = Arc::clone(&picked);
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .swap_source(move || {
            let mut picked = source_picked.lock().unwrap();
            let index = (picked.len() + 1) % source_models.len();
            picked.push(index);
            Ok(Arc::clone(&source_models[index]))
        })
        .build()
        .unwrap();
    let addr = http.local_addr();

    let corpus: Arc<Vec<(String, QueryRequest)>> = Arc::new(corpus());
    let stop = Arc::new(AtomicBool::new(false));

    // Query threads: pipelined bursts over keep-alive connections for the
    // whole swap storm.
    let mut workers = Vec::new();
    for thread_id in 0..CLIENT_THREADS {
        let corpus = Arc::clone(&corpus);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut observed = Vec::new();
            let mut cursor = thread_id; // de-phase the threads
            while !stop.load(Ordering::Acquire) {
                let burst: Vec<usize> = (0..BURST).map(|i| (cursor + i) % corpus.len()).collect();
                cursor += BURST;
                for &index in &burst {
                    client
                        .send("POST", "/query", Some(&corpus[index].0))
                        .unwrap();
                }
                for &index in &burst {
                    let response = client.recv().unwrap();
                    assert_eq!(
                        response.status, 200,
                        "request must never fail during a swap: {}",
                        response.body
                    );
                    observed.push(decode_observed(index, &response.body));
                }
            }
            observed
        }));
    }

    // Admin thread: ≥ 3 swaps through the HTTP surface, paced so queries
    // land before, between, and after swaps.
    let swap_epochs: Vec<u64> = {
        let mut client = Client::connect(addr).unwrap();
        let mut epochs = Vec::new();
        for _ in 0..SWAPS {
            std::thread::sleep(Duration::from_millis(40));
            let response = client.request("POST", "/admin/swap", None).unwrap();
            assert_eq!(response.status, 200, "{}", response.body);
            let doc = json::parse(&response.body).unwrap();
            assert_eq!(doc.get("swapped"), Some(&Json::Bool(true)));
            epochs.push(doc.get("epoch").and_then(Json::as_u64).unwrap());
        }
        std::thread::sleep(Duration::from_millis(40));
        epochs
    };
    stop.store(true, Ordering::Release);
    let observed: Vec<Observed> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();

    // Epoch → model map: epoch 0 is the boot model, each swap response's
    // epoch maps to the model its source call picked.
    let picked = picked.lock().unwrap();
    assert_eq!(picked.len(), SWAPS);
    let mut epoch_models: HashMap<u64, Arc<MfModel>> = HashMap::new();
    epoch_models.insert(0, Arc::clone(&models[0]));
    for (epoch, &pick) in swap_epochs.iter().zip(picked.iter()) {
        epoch_models.insert(*epoch, Arc::clone(&models[pick]));
    }

    // Every observed response replays bit-identically on a fresh engine
    // holding that epoch's model.
    let mut references: HashMap<u64, Arc<Engine>> = HashMap::new();
    let mut seen_epochs = std::collections::HashSet::new();
    assert!(!observed.is_empty());
    for obs in &observed {
        seen_epochs.insert(obs.epoch);
        let reference = references.entry(obs.epoch).or_insert_with(|| {
            bmm_engine(
                epoch_models
                    .get(&obs.epoch)
                    .unwrap_or_else(|| panic!("unknown epoch {}", obs.epoch)),
            )
        });
        let expected = reference.execute(&corpus[obs.corpus_index].1).unwrap();
        assert_eq!(obs.results.len(), expected.results.len());
        for (got, want) in obs.results.iter().zip(&expected.results) {
            assert_eq!(got.0, want.items, "epoch {}", obs.epoch);
            let want_bits: Vec<u64> = want.scores.iter().map(|s| s.to_bits()).collect();
            assert_eq!(
                got.1, want_bits,
                "epoch {}: score bits must match a fresh engine",
                obs.epoch
            );
        }
    }
    // The storm actually spanned epochs (boot + at least one swapped).
    assert!(
        seen_epochs.len() >= 2,
        "queries should observe multiple epochs, saw {seen_epochs:?}"
    );

    // Nothing failed anywhere in the stack.
    let server_metrics = server.metrics();
    assert_eq!(server_metrics.failed, 0);
    assert_eq!(server_metrics.rejected, 0);
    assert_eq!(server_metrics.swaps, SWAPS as u64);
    let net = http.shutdown().unwrap();
    assert_eq!(net.responses_5xx, 0);
    assert_eq!(net.admin_swaps, SWAPS as u64);
    assert_eq!(net.responses_2xx as usize, observed.len() + SWAPS);
}
