//! Property/fuzz suite for the HTTP parser and the JSON codec.
//!
//! The front door's robustness contract: arbitrary bytes — truncated
//! requests, oversized heads, malformed bodies, pipelined streams,
//! nesting bombs — must classify as `Incomplete`/`Ready`/`Bad` (HTTP) or
//! `Ok`/`Err` (JSON) without ever panicking, hanging, or misframing a
//! valid request that follows a complete one.

use mips_net::http::{parse_request, Limits, Parse};
use mips_net::json::{self, Json};
use proptest::collection::vec;
use proptest::prelude::*;

fn limits() -> Limits {
    Limits {
        max_head_bytes: 512,
        max_body_bytes: 1024,
    }
}

/// A well-formed request with the given body, as raw bytes.
fn valid_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Arbitrary bytes never panic the HTTP parser, and every complete
    /// verdict is internally consistent.
    #[test]
    fn random_bytes_never_panic_http(bytes in vec(0u8..=255, 0..600)) {
        match parse_request(&bytes, &limits()) {
            Parse::Ready(req) => {
                prop_assert!(req.consumed <= bytes.len());
                prop_assert!(!req.method.is_empty());
                prop_assert!(req.body.len() <= limits().max_body_bytes);
            }
            Parse::Bad(err) => {
                prop_assert!((400..=505).contains(&err.status), "{err:?}");
            }
            Parse::Incomplete { .. } => {
                // Incomplete is only legal while the head limit allows
                // waiting for more bytes.
                prop_assert!(
                    bytes.len() <= limits().max_head_bytes
                        || bytes.windows(4).any(|w| w == b"\r\n\r\n")
                );
            }
        }
    }

    /// Every proper prefix of a valid request is Incomplete — truncation
    /// must never be misread as a complete or condemned request.
    #[test]
    fn truncations_of_valid_requests_are_incomplete(cut in 0usize..74,
                                                    k in 1u64..1000) {
        let full = valid_request("/query", &format!("{{\"k\": {k:04}}}"));
        let cut = cut.min(full.len() - 1);
        match parse_request(&full[..cut], &limits()) {
            Parse::Incomplete { .. } => {}
            other => prop_assert!(false, "cut {cut}: {other:?}"),
        }
        match parse_request(&full, &limits()) {
            Parse::Ready(req) => prop_assert!(req.consumed == full.len()),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Mutating one byte of a valid request classifies without panicking,
    /// and never over-consumes the buffer.
    #[test]
    fn single_byte_mutations_classify(pos in 0usize..60, byte in 0u8..=255) {
        let mut buf = valid_request("/query", "{\"k\": 3}");
        let pos = pos.min(buf.len() - 1);
        buf[pos] = byte;
        match parse_request(&buf, &limits()) {
            Parse::Ready(req) => prop_assert!(req.consumed <= buf.len()),
            Parse::Bad(err) => prop_assert!((400..=505).contains(&err.status)),
            Parse::Incomplete { .. } => {}
        }
    }

    /// Pipelined requests frame exactly: the first parse consumes the
    /// first request and the remainder reparses as the second.
    #[test]
    fn pipelined_requests_frame_exactly(k1 in 1u64..50, k2 in 1u64..50) {
        let first = valid_request("/query", &format!("{{\"k\": {k1}}}"));
        let second = valid_request("/other", &format!("{{\"k\": {k2}}}"));
        let mut stream = first.clone();
        stream.extend_from_slice(&second);
        let req1 = match parse_request(&stream, &limits()) {
            Parse::Ready(req) => req,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(req1.consumed, first.len());
        prop_assert_eq!(req1.path.as_str(), "/query");
        let rest = &stream[req1.consumed..];
        let req2 = match parse_request(rest, &limits()) {
            Parse::Ready(req) => req,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(req2.consumed, second.len());
        prop_assert_eq!(req2.path.as_str(), "/other");
    }

    /// Oversized heads condemn the stream with 431 whether or not the
    /// terminator ever arrives.
    #[test]
    fn oversized_heads_are_431(extra in 0usize..200) {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(520 + extra));
        match parse_request(long.as_bytes(), &limits()) {
            Parse::Bad(err) => prop_assert_eq!(err.status, 431),
            other => prop_assert!(false, "{other:?}"),
        }
        let unterminated = "x".repeat(513 + extra);
        match parse_request(unterminated.as_bytes(), &limits()) {
            Parse::Bad(err) => prop_assert_eq!(err.status, 431),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Arbitrary bytes never panic the JSON parser; arbitrary *valid*
    /// UTF-8 never panics either and errors stay descriptive.
    #[test]
    fn random_bytes_never_panic_json(bytes in vec(0u8..=255, 0..400)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = json::parse(text);
        }
        let _ = json::decode_query_request(&bytes);
    }

    /// Malformed query bodies are rejected with an error, never accepted
    /// with a misread field.
    #[test]
    fn mutated_query_bodies_classify(pos in 0usize..30, byte in 0u8..=127) {
        let mut body = b"{\"k\": 7, \"users\": [1, 2, 3]}".to_vec();
        let pos = pos.min(body.len() - 1);
        body[pos] = byte;
        if let Ok(request) = json::decode_query_request(&body) {
            // If the mutation kept it valid, the parsed request must obey
            // the wire grammar (k parsed from digits present in the body).
            prop_assert!(request.k <= 97);
        }
    }

    /// Deep nesting is rejected at the documented bound, not by stack
    /// overflow.
    #[test]
    fn nesting_bombs_are_bounded(depth in 65usize..600) {
        let bomb = "[".repeat(depth) + &"]".repeat(depth);
        prop_assert!(json::parse(&bomb).is_err());
        let keyed = "{\"a\":".repeat(depth) + "1" + &"}".repeat(depth);
        prop_assert!(json::parse(&keyed).is_err());
    }

    /// Scores survive the wire bit-for-bit through encode + parse.
    #[test]
    fn score_bits_roundtrip(bits in 0u64..u64::MAX) {
        let score = f64::from_bits(bits);
        if !score.is_finite() {
            return;
        }
        let response = mips_core::engine::QueryResponse {
            results: vec![mips_topk::TopKList { items: vec![0], scores: vec![score] }],
            backend: "bmm".into(),
            precision: mips_core::precision::Precision::F64,
            planned: false,
            epoch: 0,
            serve_seconds: 0.0,
        };
        let wire = json::encode_response(&response);
        let doc = json::parse(&wire).unwrap();
        let parsed = doc.get("results")
            .and_then(Json::as_arr)
            .and_then(|r| r[0].get("scores"))
            .and_then(Json::as_arr)
            .and_then(|s| s[0].as_num())
            .expect("score present in wire response");
        prop_assert_eq!(parsed.to_bits(), score.to_bits());
    }
}
