//! Exact inverted-index MIPS for sparse and hybrid dense–sparse catalogs.
//!
//! Every backend before this one scans items: BMM, MAXIMUS, LEMP, and
//! FEXIPRO all walk (some prefix of) every item vector per query. When the
//! catalog is sparse — bag-of-words features, learned sparse embeddings —
//! almost all of that work multiplies by zero. The inverted-index family
//! (SINDI and friends) transposes the loop: store, per *factor*, the
//! postings list of items with a nonzero coordinate there, and per query
//! touch only the postings of the query's own nonzero coordinates
//! (term-at-a-time accumulation). Work drops from `O(n·f)` to
//! `O(nnz(q) · avg postings)`.
//!
//! The catch is exactness. This repository's contract is that every backend
//! returns results **bit-identical** to the blocked-matrix-multiply
//! reference, whose scores are single sequential FMA chains over all `f`
//! coordinates ([`mips_linalg::kernels::dot_gemm_ordered`]). A postings
//! accumulator sums a different subset in a different order, so its floats
//! can differ from the canonical chain in the last ulps. [`InvertedIndex`]
//! therefore runs a *screen-then-rescore* pipeline, the same discipline the
//! mixed-precision f32 screen uses:
//!
//! 1. **Accumulate** approximate scores over the postings (plus dense
//!    column panels for the hybrid head — columns denser than
//!    [`SparseConfig::dense_column_cutoff`] are stored contiguously and
//!    accumulated with a dense AXPY-style loop).
//! 2. **Bound** each accumulated score by a conservative envelope
//!    ([`sparse_accum_envelope_parts`]) covering reassociation between the
//!    accumulation order and the canonical chain, plus the L2 mass of any
//!    pruned query terms (norm-based pruning, [`SparseConfig::prune_threshold`]).
//! 3. **Select** candidates whose upper bound clears the `k`-th best lower
//!    bound, and **rescore** exactly those with the canonical FMA chain.
//!    Untouched items — no overlap with the (unpruned) query support — have
//!    a canonical score of *exactly* `+0.0` (every chain step is
//!    `fma(x, ±0, acc)` or `fma(0, y, acc)`, which cannot move `acc` off
//!    `+0.0` in round-to-nearest), so they are admitted as literal zeros
//!    without rescoring when the threshold allows them at all.
//!
//! The top-k heap is push-order independent, so feeding it the canonical
//! scores of a candidate superset yields the same list, bit for bit, as
//! feeding it every item — the property the identity proptests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mips_linalg::kernels::{dot_gemm_ordered, dot_gemm_ordered_x4};
use mips_linalg::{norm2, Matrix};
use mips_topk::{TopKHeap, TopKList};

/// Knobs of the inverted-index backend — the sparse entries of the engine's
/// options surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseConfig {
    /// Fraction of the query's L2 mass that norm-based pruning may skip, in
    /// `[0, 1)`. The smallest-magnitude query terms are dropped while their
    /// combined L2 norm stays within `prune_threshold · ‖q‖`; the skipped
    /// mass is folded into the rescore envelope (Cauchy–Schwarz), so
    /// results stay exact — pruning trades accumulation work for rescore
    /// work. `0` (the default) disables pruning.
    pub prune_threshold: f64,
    /// Column density above which a factor column is stored as a contiguous
    /// dense panel instead of a postings list, in `(0, 1]`. This is the
    /// hybrid split: dense-head coordinates of a hybrid catalog exceed the
    /// cutoff and get cache-friendly dense accumulation, the sparse tail
    /// stays on postings. `1.0` forces postings everywhere.
    pub dense_column_cutoff: f64,
}

impl Default for SparseConfig {
    fn default() -> SparseConfig {
        SparseConfig {
            prune_threshold: 0.0,
            dense_column_cutoff: 0.25,
        }
    }
}

impl SparseConfig {
    /// Validates knob ranges (mirrors the other backends' config checks).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.prune_threshold) {
            return Err(format!(
                "prune_threshold {} outside [0, 1)",
                self.prune_threshold
            ));
        }
        if !(self.dense_column_cutoff > 0.0 && self.dense_column_cutoff <= 1.0) {
            return Err(format!(
                "dense_column_cutoff {} outside (0, 1]",
                self.dense_column_cutoff
            ));
        }
        Ok(())
    }
}

/// Envelope parts `(rel, abs)` for the inverted-index accumulator: the
/// accumulated score of an item with norm `‖v‖` under a query with norm
/// `‖q‖` differs from the canonical GEMM-ordered chain by at most
/// `rel · ‖q‖ · ‖v‖ + abs` (before pruning, whose skipped mass is added
/// separately). Both the canonical chain (`f` terms) and the accumulation
/// chain (≤ `f` terms, any order) carry `γ_f ≈ f·2⁻⁵³` relative error
/// against the exact sum, so `2γ_f` separates them; the constants below
/// double that again and pad the norm rounding, mirroring
/// [`mips_linalg::f32_screen_envelope_parts`]'s conservative style. The
/// `abs` part covers subnormal underflow in either chain.
pub fn sparse_accum_envelope_parts(num_factors: usize) -> (f64, f64) {
    let f = num_factors as f64;
    let rel = (4.0 * f + 16.0) * f64::EPSILON * 1.0001;
    let abs = (f + 8.0) * f64::MIN_POSITIVE;
    (rel, abs)
}

/// How one factor column is stored.
#[derive(Debug, Clone)]
enum Column {
    /// Postings span into the shared `post_items`/`post_values` arrays.
    Sparse { start: usize, end: usize },
    /// Index of a contiguous column in the dense panel.
    Dense { panel: usize },
}

/// Reusable per-query scratch: the dense accumulator, touch stamps, and
/// candidate buffers. One instance serves any number of sequential queries
/// against the same index; allocating it once per `query_range` keeps the
/// per-user cost at `O(touched)`, not `O(n)`.
#[derive(Debug)]
pub struct SparseScratch {
    acc: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    candidates: Vec<u32>,
    terms: Vec<(u32, f64)>,
}

impl SparseScratch {
    /// Scratch sized for an index over `num_items` items.
    pub fn new(num_items: usize) -> SparseScratch {
        SparseScratch {
            acc: vec![0.0; num_items],
            stamp: vec![0; num_items],
            epoch: 0,
            touched: Vec::new(),
            candidates: Vec::new(),
            terms: Vec::new(),
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrap: stale stamps could collide with the fresh epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// The inverted index over one item matrix: per-factor postings lists,
/// dense panels for hybrid-head columns, and exact per-item norms for the
/// envelope. The index never copies item rows — exact rescoring reads them
/// from the matrix the index was built over, which callers pass back in
/// (the solver adapter owns the model; the index owns only derived state).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    num_items: usize,
    num_factors: usize,
    columns: Vec<Column>,
    post_items: Vec<u32>,
    post_values: Vec<f64>,
    panels: Vec<f64>,
    item_norms: Vec<f64>,
    max_item_norm: f64,
    postings_nnz: usize,
    num_dense_cols: usize,
    config: SparseConfig,
}

impl InvertedIndex {
    /// Builds the index over `items` (one item vector per row).
    ///
    /// # Panics
    /// Panics if `config` fails validation, on non-finite entries, or if
    /// the item count exceeds `u32` index space.
    pub fn build(items: &Matrix<f64>, config: SparseConfig) -> InvertedIndex {
        config
            .validate()
            .unwrap_or_else(|err| panic!("InvertedIndex: invalid config: {err}"));
        let n = items.rows();
        let f = items.cols();
        assert!(
            n <= u32::MAX as usize,
            "InvertedIndex: {n} items exceed u32 index space"
        );

        // Pass 1: per-column nonzero counts decide sparse vs dense storage.
        let mut col_nnz = vec![0usize; f];
        for row in items.iter_rows() {
            for (j, &v) in row.iter().enumerate() {
                assert!(v.is_finite(), "InvertedIndex: non-finite entry");
                if v != 0.0 {
                    col_nnz[j] += 1;
                }
            }
        }
        let mut columns = Vec::with_capacity(f);
        let mut postings_nnz = 0usize;
        let mut num_dense_cols = 0usize;
        for &nnz in &col_nnz {
            let density = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
            if density > config.dense_column_cutoff {
                columns.push(Column::Dense {
                    panel: num_dense_cols,
                });
                num_dense_cols += 1;
            } else {
                // Span filled in pass 2; record the width for now.
                columns.push(Column::Sparse {
                    start: postings_nnz,
                    end: postings_nnz + nnz,
                });
                postings_nnz += nnz;
            }
        }

        // Pass 2: fill postings (item-ascending per column, by construction
        // of the row-major walk) and dense panels (column-major).
        let mut post_items = vec![0u32; postings_nnz];
        let mut post_values = vec![0.0f64; postings_nnz];
        let mut fill = vec![0usize; f];
        let mut panels = vec![0.0f64; num_dense_cols * n];
        for (i, row) in items.iter_rows().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                match columns[j] {
                    Column::Dense { panel } => panels[panel * n + i] = v,
                    Column::Sparse { start, .. } => {
                        if v != 0.0 {
                            let slot = start + fill[j];
                            post_items[slot] = i as u32;
                            post_values[slot] = v;
                            fill[j] += 1;
                        }
                    }
                }
            }
        }

        let item_norms: Vec<f64> = items.iter_rows().map(norm2).collect();
        let max_item_norm = item_norms.iter().copied().fold(0.0, f64::max);
        InvertedIndex {
            num_items: n,
            num_factors: f,
            columns,
            post_items,
            post_values,
            panels,
            item_norms,
            max_item_norm,
            postings_nnz,
            num_dense_cols,
            config,
        }
    }

    /// Items indexed.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Latent dimensionality `f`.
    pub fn num_factors(&self) -> usize {
        self.num_factors
    }

    /// Total postings entries across sparse columns.
    pub fn postings_nnz(&self) -> usize {
        self.postings_nnz
    }

    /// Columns stored as dense panels (the hybrid head).
    pub fn num_dense_cols(&self) -> usize {
        self.num_dense_cols
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SparseConfig {
        &self.config
    }

    /// Accumulation cost of a query touching *every* factor once: postings
    /// entries plus dense-panel cells. A query with `nnz(q)` uniformly
    /// placed nonzeros expects `nnz(q)/f` of this — the quantity OPTIMUS's
    /// analytical sparse model scales by sampled query-side nnz.
    pub fn total_scan_cost(&self) -> usize {
        self.postings_nnz + self.num_dense_cols * self.num_items
    }

    /// Exact top-`k` for a dense query vector, allocating fresh scratch.
    /// See [`InvertedIndex::query_with_scratch`].
    pub fn query(&self, query: &[f64], k: usize, items: &Matrix<f64>) -> TopKList {
        let mut scratch = SparseScratch::new(self.num_items);
        self.query_with_scratch(query, k, items, &mut scratch)
    }

    /// Exact top-`k` for a dense query vector, bit-identical to pushing
    /// every item's [`dot_gemm_ordered`] score into a [`TopKHeap`].
    ///
    /// `items` must be the matrix the index was built over (the caller —
    /// solver adapter or engine — owns it; the index stores only derived
    /// postings).
    ///
    /// # Panics
    /// Panics if dimensions disagree with the index or the query has
    /// non-finite entries.
    pub fn query_with_scratch(
        &self,
        query: &[f64],
        k: usize,
        items: &Matrix<f64>,
        scratch: &mut SparseScratch,
    ) -> TopKList {
        assert_eq!(
            query.len(),
            self.num_factors,
            "InvertedIndex: query dimension mismatch"
        );
        assert_eq!(
            (items.rows(), items.cols()),
            (self.num_items, self.num_factors),
            "InvertedIndex: items matrix does not match the indexed shape"
        );
        assert_eq!(scratch.acc.len(), self.num_items, "scratch size mismatch");
        for &v in query {
            assert!(v.is_finite(), "InvertedIndex: non-finite query entry");
        }

        let n = self.num_items;
        let query_norm = norm2(query);

        // --- Term selection and norm-based pruning. -----------------------
        scratch.terms.clear();
        for (j, &q) in query.iter().enumerate() {
            if q != 0.0 {
                scratch.terms.push((j as u32, q));
            }
        }
        let mut skipped_mass = 0.0f64;
        if self.config.prune_threshold > 0.0 && !scratch.terms.is_empty() {
            // Drop the smallest-|q_j| sparse-column terms while their joint
            // L2 mass stays within the budget. Dense panels are never
            // pruned: their per-term cost is the point of the panel, and
            // keeping them tightens the envelope for free.
            let budget = self.config.prune_threshold * query_norm;
            scratch
                .terms
                .sort_by(|a, b| a.1.abs().total_cmp(&b.1.abs()));
            let mut sumsq = 0.0f64;
            let mut keep_from = 0usize;
            for (idx, &(j, q)) in scratch.terms.iter().enumerate() {
                if matches!(self.columns[j as usize], Column::Dense { .. }) {
                    break;
                }
                let next = sumsq + q * q;
                if next.sqrt() <= budget {
                    sumsq = next;
                    keep_from = idx + 1;
                } else {
                    break;
                }
            }
            if keep_from > 0 {
                scratch.terms.drain(..keep_from);
                // 1.001 pads the rounding of the pruned-mass arithmetic
                // itself; the envelope proper is handled separately.
                skipped_mass = sumsq.sqrt() * 1.001;
            }
        }

        // --- Term-at-a-time accumulation. ---------------------------------
        let any_dense = scratch
            .terms
            .iter()
            .any(|&(j, _)| matches!(self.columns[j as usize], Column::Dense { .. }));
        let all_touched = any_dense;
        if all_touched {
            // A dense panel touches every item; skip stamp bookkeeping.
            scratch.acc.fill(0.0);
            for &(j, q) in &scratch.terms {
                match self.columns[j as usize] {
                    Column::Dense { panel } => {
                        let col = &self.panels[panel * n..(panel + 1) * n];
                        for (a, &v) in scratch.acc.iter_mut().zip(col) {
                            *a = q.mul_add(v, *a);
                        }
                    }
                    Column::Sparse { start, end } => {
                        for (slot, &i) in self.post_items[start..end].iter().enumerate() {
                            let v = self.post_values[start + slot];
                            scratch.acc[i as usize] = q.mul_add(v, scratch.acc[i as usize]);
                        }
                    }
                }
            }
        } else {
            let epoch = scratch.next_epoch();
            scratch.touched.clear();
            for &(j, q) in &scratch.terms {
                if let Column::Sparse { start, end } = self.columns[j as usize] {
                    for (slot, &i) in self.post_items[start..end].iter().enumerate() {
                        let v = self.post_values[start + slot];
                        let idx = i as usize;
                        if scratch.stamp[idx] != epoch {
                            scratch.stamp[idx] = epoch;
                            scratch.acc[idx] = 0.0;
                            scratch.touched.push(i);
                        }
                        scratch.acc[idx] = q.mul_add(v, scratch.acc[idx]);
                    }
                }
            }
        }

        // --- Envelope + candidate selection. ------------------------------
        let (rel, abs) = sparse_accum_envelope_parts(self.num_factors);
        let env_rel = rel * query_norm + skipped_mass;
        let envelope = |norm: f64| env_rel * norm + abs;

        let mut lower = TopKHeap::new(k);
        let push_lower = |lower: &mut TopKHeap, acc: f64, i: u32, norms: &[f64]| {
            lower.push(acc - envelope(norms[i as usize]), i);
        };
        if all_touched {
            for i in 0..n as u32 {
                push_lower(&mut lower, scratch.acc[i as usize], i, &self.item_norms);
            }
        } else {
            for &i in &scratch.touched {
                push_lower(&mut lower, scratch.acc[i as usize], i, &self.item_norms);
            }
        }
        let theta = lower.threshold();

        scratch.candidates.clear();
        if all_touched {
            for i in 0..n as u32 {
                if scratch.acc[i as usize] + envelope(self.item_norms[i as usize]) >= theta {
                    scratch.candidates.push(i);
                }
            }
        } else {
            for &i in &scratch.touched {
                if scratch.acc[i as usize] + envelope(self.item_norms[i as usize]) >= theta {
                    scratch.candidates.push(i);
                }
            }
        }

        // --- Exact canonical rescore of the candidate superset. -----------
        let mut heap = TopKHeap::new(k);
        let mut chunks = scratch.candidates.chunks_exact(4);
        for chunk in &mut chunks {
            let rows = [
                items.row(chunk[0] as usize),
                items.row(chunk[1] as usize),
                items.row(chunk[2] as usize),
                items.row(chunk[3] as usize),
            ];
            let scores = dot_gemm_ordered_x4(query, rows);
            for (&i, &s) in chunk.iter().zip(&scores) {
                heap.push(s, i);
            }
        }
        for &i in chunks.remainder() {
            heap.push(dot_gemm_ordered(query, items.row(i as usize)), i);
        }

        // --- Untouched items. ---------------------------------------------
        // Without pruning an untouched item's canonical score is exactly
        // +0.0 (see crate docs), so it enters as a literal zero. With
        // pruning its accumulator is an implicit 0 with the same envelope
        // as everyone else, so it must be rescored when the envelope
        // clears θ. Either way the global max-norm envelope lets the whole
        // pass be skipped once θ is safely above anything untouched.
        if !all_touched && theta <= envelope(self.max_item_norm) {
            let epoch = scratch.epoch;
            let prune_active = skipped_mass > 0.0;
            for i in 0..n as u32 {
                if scratch.stamp[i as usize] == epoch {
                    continue; // touched
                }
                if prune_active {
                    if envelope(self.item_norms[i as usize]) >= theta {
                        heap.push(dot_gemm_ordered(query, items.row(i as usize)), i);
                    }
                } else {
                    heap.push(0.0, i);
                }
            }
        }

        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_topk(query: &[f64], k: usize, items: &Matrix<f64>) -> TopKList {
        let mut heap = TopKHeap::new(k);
        for i in 0..items.rows() {
            heap.push(dot_gemm_ordered(query, items.row(i)), i as u32);
        }
        heap.into_sorted()
    }

    fn assert_bit_identical(a: &TopKList, b: &TopKList) {
        assert_eq!(a.items, b.items, "item order differs");
        let a_bits: Vec<u64> = a.scores.iter().map(|s| s.to_bits()).collect();
        let b_bits: Vec<u64> = b.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "score bits differ");
    }

    fn toy_items() -> Matrix<f64> {
        // 6 items, 4 factors; column 0 dense, the rest sparse.
        Matrix::from_vec(
            6,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                -0.5, 1.5, 0.0, 0.0, //
                2.0, 0.0, 0.0, -1.0, //
                0.1, 0.0, 0.0, 0.0, //
                -1.0, 0.0, 3.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, // all-zero item
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_reference_on_toy_matrix_at_every_k() {
        let items = toy_items();
        let index = InvertedIndex::build(&items, SparseConfig::default());
        assert_eq!(
            index.num_dense_cols(),
            2,
            "columns 0 (5/6) and 2 (2/6) are dense"
        );
        for query in [
            vec![1.0, 0.0, 0.5, 0.0],
            vec![0.0, 2.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![-1.0, 1.0, 1.0, 1.0],
        ] {
            for k in 0..=7 {
                let got = index.query(&query, k, &items);
                let want = reference_topk(&query, k, &items);
                assert_bit_identical(&got, &want);
            }
        }
    }

    #[test]
    fn untouched_items_enter_as_exact_zeros() {
        // Query supported only on factor 1 → touches item 1 alone; with
        // k=3 the zero-scoring untouched items must fill the tail in id
        // order, exactly as the dense reference produces them.
        let items = toy_items();
        let index = InvertedIndex::build(
            &items,
            SparseConfig {
                dense_column_cutoff: 1.0, // force postings everywhere
                ..SparseConfig::default()
            },
        );
        assert_eq!(index.num_dense_cols(), 0);
        let query = vec![0.0, 1.0, 0.0, 0.0];
        let got = index.query(&query, 3, &items);
        let want = reference_topk(&query, 3, &items);
        assert_bit_identical(&got, &want);
        assert_eq!(got.items[0], 1);
        assert_eq!(got.scores[1], 0.0);
    }

    #[test]
    fn pruning_stays_exact() {
        let items = toy_items();
        let index = InvertedIndex::build(
            &items,
            SparseConfig {
                prune_threshold: 0.5,
                dense_column_cutoff: 1.0,
            },
        );
        // Tiny component on factor 3 gets pruned; results must not change.
        let query = vec![1.0, 0.4, 0.3, 1e-6];
        for k in 1..=6 {
            let got = index.query(&query, k, &items);
            let want = reference_topk(&query, k, &items);
            assert_bit_identical(&got, &want);
        }
    }

    #[test]
    fn scan_cost_counts_postings_and_panels() {
        let items = toy_items();
        let index = InvertedIndex::build(&items, SparseConfig::default());
        // Columns 0 (5/6) and 2 (2/6) exceed the 0.25 cutoff → dense panels
        // (cost 6 each). Columns 1 and 3 hold 1 posting apiece.
        assert_eq!(index.postings_nnz(), 2);
        assert_eq!(index.total_scan_cost(), 12 + 2);
    }

    #[test]
    #[should_panic(expected = "prune_threshold")]
    fn rejects_invalid_config() {
        let items = toy_items();
        let _ = InvertedIndex::build(
            &items,
            SparseConfig {
                prune_threshold: 1.5,
                ..SparseConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "query dimension")]
    fn rejects_query_dim_mismatch() {
        let items = toy_items();
        let index = InvertedIndex::build(&items, SparseConfig::default());
        let _ = index.query(&[1.0, 2.0], 1, &items);
    }
}
