//! The LEMP index: build, tune, query.

use crate::bucket::{build_buckets, Bucket};
use crate::config::LempConfig;
use crate::scan::{inflate, scan_bucket, RetrievalAlgo, ScanStats, UserCtx};
use crate::tuner::tune_buckets;
use mips_data::MfModel;
use mips_topk::{TopKHeap, TopKList};

/// Cumulative work counters for a sequence of queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Buckets actually scanned (not skipped by the bucket norm bound).
    pub buckets_visited: u64,
    /// Buckets skipped or cut off by the global norm bound.
    pub buckets_skipped: u64,
    /// Per-item counters from the scans.
    pub scan: ScanStats,
}

/// A built LEMP index over one model's item matrix.
///
/// Point-query oriented, like the original system: [`LempIndex::query`]
/// serves one user at a time (the property that lets OPTIMUS apply its
/// incremental t-test to LEMP, §IV-A).
#[derive(Debug, Clone)]
pub struct LempIndex {
    buckets: Vec<Bucket>,
    algos: Vec<RetrievalAlgo>,
    checkpoint: usize,
    num_factors: usize,
    screening: bool,
    screening_i8: bool,
}

impl LempIndex {
    /// Builds the index over the model's items and tunes per-bucket
    /// retrieval on a sample of the model's users.
    pub fn build(model: &MfModel, config: &LempConfig) -> LempIndex {
        config.validate();
        let f = model.num_factors();
        let checkpoint = ((f as f64 * config.checkpoint_fraction).round() as usize).clamp(1, f);
        let buckets = build_buckets(model.items(), config.bucket_size, checkpoint);
        let algos = tune_buckets(
            &buckets,
            model.users(),
            checkpoint,
            config.tune_sample,
            config.tune_k,
            config.seed,
        );
        LempIndex {
            buckets,
            algos,
            checkpoint,
            num_factors: f,
            screening: false,
            screening_i8: false,
        }
    }

    /// Enables the mixed-precision screen: every bucket gets a rounded
    /// single-precision mirror of its item vectors, and subsequent queries
    /// pre-score candidates in f32 — pruning only those the
    /// [`mips_linalg::f32_screen_envelope`]-widened score proves cannot
    /// enter the heap — before the exact f64 verification dot. Results
    /// stay bit-identical to the pure double-precision scan (see
    /// [`crate::scan`]). Idempotent.
    pub fn enable_screen(&mut self) {
        for b in &mut self.buckets {
            b.build_screen_mirror();
        }
        self.screening = true;
    }

    /// Enables the int8 screen — the tier below
    /// [`LempIndex::enable_screen`]: every bucket gets a symmetric int8
    /// mirror of its item vectors, and subsequent queries pre-score
    /// candidates with exact integer dots, pruning only those the
    /// [`mips_linalg::i8_screen_envelope_parts`]-widened estimate proves
    /// cannot enter the heap. Results stay bit-identical (see
    /// [`crate::scan`]). No-op — the index keeps its plain identity — when
    /// any bucket's quantization degenerates (subnormal rows, factor
    /// counts past [`mips_linalg::I8_DOT_MAX_LEN`]). Takes precedence over
    /// an armed f32 screen. Idempotent.
    pub fn enable_screen_i8(&mut self) {
        if self.buckets.iter_mut().all(|b| b.build_screen_mirror_i8()) {
            self.screening_i8 = true;
        }
    }

    /// `true` once [`LempIndex::enable_screen`] has armed the f32 screen.
    pub fn is_screening(&self) -> bool {
        self.screening
    }

    /// `true` once [`LempIndex::enable_screen_i8`] has armed the int8
    /// screen (never on models whose quantization is degenerate).
    pub fn is_screening_i8(&self) -> bool {
        self.screening_i8
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The tuned per-bucket algorithms (exposed for the ablation bench).
    pub fn algorithms(&self) -> &[RetrievalAlgo] {
        &self.algos
    }

    /// Top-k for one user vector.
    ///
    /// # Panics
    /// Panics if the user dimensionality does not match the index.
    pub fn query(&self, user: &[f64], k: usize) -> TopKList {
        let mut stats = QueryStats::default();
        self.query_with_stats(user, k, &mut stats)
    }

    /// Top-k for one user, accumulating work counters into `stats`.
    pub fn query_with_stats(&self, user: &[f64], k: usize, stats: &mut QueryStats) -> TopKList {
        assert_eq!(
            user.len(),
            self.num_factors,
            "LempIndex::query: user dimensionality mismatch"
        );
        let ctx = UserCtx::new(user, self.checkpoint);
        let ctx = if self.screening_i8 {
            ctx.with_screen_i8()
        } else if self.screening {
            ctx.with_screen()
        } else {
            ctx
        };
        let mut heap = TopKHeap::new(k);
        for (b, bucket) in self.buckets.iter().enumerate() {
            // Buckets descend in max norm: once even the best possible score
            // in this bucket cannot enter the heap, later buckets can't
            // either.
            if heap.is_full() && inflate(ctx.norm * bucket.max_norm) < heap.threshold() {
                stats.buckets_skipped += (self.buckets.len() - b) as u64;
                break;
            }
            stats.buckets_visited += 1;
            scan_bucket(self.algos[b], bucket, &ctx, &mut heap, &mut stats.scan);
        }
        heap.into_sorted()
    }

    /// Top-k for every user in the model, one point query at a time.
    pub fn query_all(&self, model: &MfModel, k: usize) -> Vec<TopKList> {
        (0..model.num_users())
            .map(|u| self.query(model.users().row(u), k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_linalg::kernels::dot;

    fn model(skew: f64) -> MfModel {
        synth_model(&SynthConfig {
            num_users: 60,
            num_items: 400,
            num_factors: 16,
            item_norm_skew: skew,
            seed: 77,
            ..SynthConfig::default()
        })
    }

    fn reference(model: &MfModel, u: usize, k: usize) -> TopKList {
        let mut heap = TopKHeap::new(k);
        for i in 0..model.num_items() {
            heap.push(dot(model.users().row(u), model.items().row(i)), i as u32);
        }
        heap.into_sorted()
    }

    #[test]
    fn exact_against_brute_force() {
        let m = model(0.8);
        let index = LempIndex::build(&m, &LempConfig::default());
        for k in [1usize, 5, 17] {
            for u in (0..m.num_users()).step_by(7) {
                let got = index.query(m.users().row(u), k);
                let want = reference(&m, u, k);
                assert_eq!(got.items, want.items, "k={k} u={u}");
                for (a, b) in got.scores.iter().zip(&want.scores) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn skewed_norms_enable_bucket_skipping() {
        let m = model(1.3);
        let index = LempIndex::build(&m, &LempConfig::default());
        let mut stats = QueryStats::default();
        for u in 0..m.num_users() {
            let _ = index.query_with_stats(m.users().row(u), 3, &mut stats);
        }
        assert!(
            stats.buckets_skipped > 0,
            "no buckets skipped on heavily skewed norms"
        );
        let visited_items = stats.scan.dots_computed + stats.scan.incr_pruned;
        let total_items = (m.num_items() * m.num_users()) as u64;
        assert!(
            visited_items < total_items,
            "index did no better than brute force"
        );
    }

    #[test]
    fn k_larger_than_item_count() {
        let m = synth_model(&SynthConfig {
            num_users: 3,
            num_items: 5,
            num_factors: 4,
            ..SynthConfig::default()
        });
        let index = LempIndex::build(&m, &LempConfig::default());
        let got = index.query(m.users().row(0), 50);
        assert_eq!(got.len(), 5);
        assert!(got.is_sorted());
    }

    #[test]
    fn k_zero_returns_empty() {
        let m = model(0.5);
        let index = LempIndex::build(&m, &LempConfig::default());
        assert!(index.query(m.users().row(0), 0).is_empty());
    }

    #[test]
    fn screened_index_is_bit_identical_and_prunes() {
        let m = model(0.8);
        let plain = LempIndex::build(&m, &LempConfig::default());
        let mut screened = plain.clone();
        assert!(!screened.is_screening());
        screened.enable_screen();
        assert!(screened.is_screening());
        let mut stats = QueryStats::default();
        for k in [1usize, 5, 17] {
            for u in 0..m.num_users() {
                let want = plain.query(m.users().row(u), k);
                let got = screened.query_with_stats(m.users().row(u), k, &mut stats);
                assert_eq!(got.items, want.items, "k={k} u={u}");
                for (a, b) in got.scores.iter().zip(&want.scores) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} u={u}");
                }
            }
        }
        assert!(stats.scan.screen_pruned > 0, "screen never engaged");
    }

    #[test]
    fn screened_i8_index_is_bit_identical_and_prunes() {
        let m = model(0.8);
        let plain = LempIndex::build(&m, &LempConfig::default());
        let mut screened = plain.clone();
        assert!(!screened.is_screening_i8());
        screened.enable_screen_i8();
        assert!(screened.is_screening_i8());
        let mut stats = QueryStats::default();
        for k in [1usize, 5, 17] {
            for u in 0..m.num_users() {
                let want = plain.query(m.users().row(u), k);
                let got = screened.query_with_stats(m.users().row(u), k, &mut stats);
                assert_eq!(got.items, want.items, "k={k} u={u}");
                for (a, b) in got.scores.iter().zip(&want.scores) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} u={u}");
                }
            }
        }
        assert!(stats.scan.screen_pruned > 0, "i8 screen never engaged");
    }

    #[test]
    fn query_all_matches_individual_queries() {
        let m = model(0.5);
        let index = LempIndex::build(&m, &LempConfig::default());
        let all = index.query_all(&m, 4);
        assert_eq!(all.len(), m.num_users());
        for u in (0..m.num_users()).step_by(11) {
            assert_eq!(all[u], index.query(m.users().row(u), 4));
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_width_user() {
        let m = model(0.5);
        let index = LempIndex::build(&m, &LempConfig::default());
        let _ = index.query(&[1.0, 2.0], 3);
    }

    #[test]
    fn single_bucket_configuration_works() {
        let m = model(0.5);
        let index = LempIndex::build(
            &m,
            &LempConfig {
                bucket_size: 10_000,
                ..LempConfig::default()
            },
        );
        assert_eq!(index.num_buckets(), 1);
        let got = index.query(m.users().row(0), 3);
        assert_eq!(got.items, reference(&m, 0, 3).items);
    }
}
