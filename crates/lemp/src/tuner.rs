//! The per-bucket algorithm tuner: the "LI" in LEMP-LI.
//!
//! LEMP "chooses the retrieval algorithm by testing each method on a sample
//! of user vectors" (§II-C). We run the full query pipeline over the sample
//! twice — once all-LENGTH, once all-INCR — timing each bucket, and keep the
//! faster algorithm per bucket. Because the winner depends on which users
//! were sampled, two builds with different seeds can legitimately disagree;
//! the paper's Fig. 7 traces LEMP's high runtime-estimate variance to exactly
//! this adaptivity.

use crate::bucket::Bucket;
use crate::scan::{inflate, scan_bucket, RetrievalAlgo, ScanStats, UserCtx};
use mips_linalg::Matrix;
use mips_topk::TopKHeap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Picks LENGTH or INCR for every bucket by timing sampled queries.
///
/// Returns one algorithm per bucket. With an empty user matrix or a zero
/// sample size the tuner defaults to LENGTH everywhere.
pub fn tune_buckets(
    buckets: &[Bucket],
    users: &Matrix<f64>,
    checkpoint: usize,
    sample_size: usize,
    k: usize,
    seed: u64,
) -> Vec<RetrievalAlgo> {
    if users.rows() == 0 || sample_size == 0 {
        return vec![RetrievalAlgo::Length; buckets.len()];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<usize> = (0..sample_size.min(users.rows()))
        .map(|_| rng.gen_range(0..users.rows()))
        .collect();

    let time_length = time_per_bucket(
        RetrievalAlgo::Length,
        buckets,
        users,
        &sample,
        checkpoint,
        k,
    );
    let time_incr = time_per_bucket(RetrievalAlgo::Incr, buckets, users, &sample, checkpoint, k);

    time_length
        .iter()
        .zip(&time_incr)
        .map(|(&l, &i)| {
            if i < l {
                RetrievalAlgo::Incr
            } else {
                RetrievalAlgo::Length
            }
        })
        .collect()
}

/// Runs sampled queries with a uniform algorithm, accumulating per-bucket
/// wall-clock time.
fn time_per_bucket(
    algo: RetrievalAlgo,
    buckets: &[Bucket],
    users: &Matrix<f64>,
    sample: &[usize],
    checkpoint: usize,
    k: usize,
) -> Vec<f64> {
    let mut elapsed = vec![0.0f64; buckets.len()];
    let mut stats = ScanStats::default();
    for &u in sample {
        let ctx = UserCtx::new(users.row(u), checkpoint);
        let mut heap = TopKHeap::new(k);
        for (b, bucket) in buckets.iter().enumerate() {
            if heap.is_full() && inflate(ctx.norm * bucket.max_norm) < heap.threshold() {
                break;
            }
            let start = Instant::now();
            scan_bucket(algo, bucket, &ctx, &mut heap, &mut stats);
            elapsed[b] += start.elapsed().as_secs_f64();
        }
    }
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::build_buckets;

    fn random_matrix(n: usize, f: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(n, f, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn returns_one_algo_per_bucket() {
        let items = random_matrix(100, 8, 3);
        let users = random_matrix(20, 8, 4);
        let buckets = build_buckets(&items, 16, 2);
        let algos = tune_buckets(&buckets, &users, 2, 8, 5, 1);
        assert_eq!(algos.len(), buckets.len());
        for a in &algos {
            assert!(matches!(a, RetrievalAlgo::Length | RetrievalAlgo::Incr));
        }
    }

    #[test]
    fn empty_sample_defaults_to_length() {
        let items = random_matrix(40, 4, 9);
        let users = random_matrix(10, 4, 2);
        let buckets = build_buckets(&items, 10, 1);
        let algos = tune_buckets(&buckets, &users, 1, 0, 5, 1);
        assert!(algos.iter().all(|&a| a == RetrievalAlgo::Length));
    }

    #[test]
    fn deterministic_given_seed_and_sample() {
        // Timing noise could flip decisions between runs on near-tied
        // buckets; we only require the *sampled users* to be deterministic,
        // which this test checks via a fixed-seed double run returning the
        // same length (decisions themselves may vary with machine noise).
        let items = random_matrix(60, 6, 5);
        let users = random_matrix(12, 6, 6);
        let buckets = build_buckets(&items, 12, 2);
        let a = tune_buckets(&buckets, &users, 2, 6, 5, 42);
        let b = tune_buckets(&buckets, &users, 2, 6, 5, 42);
        assert_eq!(a.len(), b.len());
    }
}
