//! A Rust port of LEMP, the exact MIPS index of Teflioudi et al.
//! (SIGMOD 2015 \[34\], TODS 2016 \[33\]) — one of the two state-of-the-art
//! baselines the paper evaluates OPTIMUS/MAXIMUS against.
//!
//! LEMP's divide-and-conquer strategy (§II-C of the paper):
//!
//! 1. **Bucketing** — items are sorted by vector norm, descending, and
//!    partitioned into buckets of roughly equal magnitude. For a user whose
//!    current top-k threshold is `t`, any bucket whose largest norm `b₁`
//!    satisfies `‖u‖·b₁ < t` can be skipped — and because buckets descend in
//!    norm, the whole scan stops there.
//! 2. **Per-bucket retrieval** — inside a bucket the problem becomes a small
//!    cosine-similarity search. LEMP chooses among retrieval algorithms per
//!    bucket by *testing each on a sample of users*: here LENGTH
//!    (norm-bound scanning) and INCR (partial inner products bounded by
//!    Cauchy–Schwarz on the coordinate suffix), the combination the paper
//!    benchmarks as LEMP-LI.
//! 3. **Verification** — candidates that survive pruning are scored with a
//!    full inner product against the *original* item vector, so results are
//!    bit-identical to brute force.
//!
//! The sample-driven tuner is deliberately retained: the paper's Fig. 7
//! shows that LEMP's runtime estimates have high variance precisely because
//! two user samples can select different per-bucket strategies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod config;
pub mod index;
pub mod scan;
pub mod tuner;

pub use config::LempConfig;
pub use index::{LempIndex, QueryStats};
pub use scan::RetrievalAlgo;
