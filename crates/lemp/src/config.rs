//! LEMP tuning parameters.

/// Configuration for [`crate::LempIndex`].
#[derive(Debug, Clone, Copy)]
pub struct LempConfig {
    /// Items per bucket. Buckets small enough to stay cache-resident make the
    /// per-bucket cosine search fast; the original system sizes buckets to
    /// the cache, we default to 256 vectors.
    pub bucket_size: usize,
    /// Fraction of coordinates scanned before the INCR algorithm applies its
    /// Cauchy–Schwarz suffix bound.
    pub checkpoint_fraction: f64,
    /// Number of sampled users the build-time tuner uses to pick LENGTH vs
    /// INCR per bucket (the adaptive step of LEMP-LI).
    pub tune_sample: usize,
    /// `k` used for tuning queries.
    pub tune_k: usize,
    /// Seed for the tuner's user sample. Different seeds may legitimately
    /// select different per-bucket algorithms (the Fig. 7 variance effect).
    pub seed: u64,
}

impl Default for LempConfig {
    fn default() -> Self {
        LempConfig {
            bucket_size: 256,
            checkpoint_fraction: 0.25,
            tune_sample: 16,
            tune_k: 10,
            seed: 0x1E3B,
        }
    }
}

impl LempConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(self.bucket_size > 0, "LempConfig: bucket_size must be > 0");
        assert!(
            self.checkpoint_fraction > 0.0 && self.checkpoint_fraction <= 1.0,
            "LempConfig: checkpoint_fraction must be in (0, 1]"
        );
        assert!(self.tune_k > 0, "LempConfig: tune_k must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        LempConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "bucket_size")]
    fn rejects_zero_bucket() {
        LempConfig {
            bucket_size: 0,
            ..LempConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "checkpoint_fraction")]
    fn rejects_bad_checkpoint() {
        LempConfig {
            checkpoint_fraction: 0.0,
            ..LempConfig::default()
        }
        .validate();
    }
}
