//! Norm-sorted item buckets.
//!
//! Items are sorted by Euclidean norm, descending, then chopped into
//! fixed-size buckets. Each bucket stores the items' *unit directions*
//! (for the INCR cosine bounds), their norms, the original vectors (for
//! exact verification), and precomputed direction suffix norms at the INCR
//! checkpoint.

use mips_linalg::kernels::{norm2, suffix_norms};
use mips_linalg::{quantize_row_i8, Matrix, I8_DOT_MAX_LEN};

/// One bucket of norm-adjacent items.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Global item ids, in descending-norm order.
    pub ids: Vec<u32>,
    /// Original item vectors (row-aligned with `ids`), used for exact
    /// verification dots.
    pub vectors: Matrix<f64>,
    /// Unit directions of the items (zero rows stay zero).
    pub dirs: Matrix<f64>,
    /// Item norms, descending.
    pub norms: Vec<f64>,
    /// `‖dir[cp..]‖` per item: the Cauchy–Schwarz suffix factor at the INCR
    /// checkpoint.
    pub dir_suffix_at_cp: Vec<f64>,
    /// Largest norm in the bucket (`b₁` in the paper's notation).
    pub max_norm: f64,
    /// Rounded single-precision mirror of [`Bucket::vectors`], present only
    /// after [`Bucket::build_screen_mirror`]: the f32 screen scores items
    /// from these rows before the exact verification dot (see
    /// [`crate::scan`]).
    pub vectors32: Option<Matrix<f32>>,
    /// Symmetric int8 mirror of [`Bucket::vectors`], present only after a
    /// successful [`Bucket::build_screen_mirror_i8`]: the int8 screen
    /// scores items with exact integer dots before the exact verification
    /// dot (see [`crate::scan`]).
    pub vectors_i8: Option<BucketI8>,
}

/// One bucket's int8 screen data (row-aligned with [`Bucket::ids`]).
#[derive(Debug, Clone)]
pub struct BucketI8 {
    /// Item codes, row-major (`n × f`), quantized per row with the shared
    /// [`mips_linalg::quant`] policy.
    pub codes: Vec<i8>,
    /// `1 / s_i` per row (reconstruction multipliers).
    pub inv_scales: Vec<f64>,
    /// Exact L1 norm per row (envelope input).
    pub l1: Vec<f64>,
}

impl Bucket {
    /// Number of items in the bucket.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the bucket holds no items.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Fills [`Bucket::vectors32`] with the rounded single-precision copy
    /// of the item vectors, enabling the mixed-precision screen in the
    /// scans. Idempotent; a no-op when the mirror already exists.
    pub fn build_screen_mirror(&mut self) {
        if self.vectors32.is_none() {
            let (n, f) = (self.vectors.rows(), self.vectors.cols());
            self.vectors32 = Some(Matrix::from_fn(n, f, |r, c| self.vectors.get(r, c) as f32));
        }
    }

    /// Fills [`Bucket::vectors_i8`] with the symmetric int8 codes of the
    /// item vectors, enabling the int8 screen in the scans. Returns `false`
    /// — leaving the bucket unmirrored — when quantization degenerates:
    /// the factor count exceeds the i32-overflow cap
    /// ([`mips_linalg::I8_DOT_MAX_LEN`]) or a row's scale or L1 norm is
    /// non-finite (subnormal magnitudes). Idempotent; `true` when the
    /// mirror already exists.
    pub fn build_screen_mirror_i8(&mut self) -> bool {
        if self.vectors_i8.is_some() {
            return true;
        }
        let (n, f) = (self.vectors.rows(), self.vectors.cols());
        if f > I8_DOT_MAX_LEN {
            return false;
        }
        let mut codes = vec![0i8; n * f];
        let mut inv_scales = Vec::with_capacity(n);
        let mut l1 = Vec::with_capacity(n);
        for r in 0..n {
            let (scale, row_l1) =
                quantize_row_i8(self.vectors.row(r), &mut codes[r * f..(r + 1) * f]);
            if !(scale.is_finite() && row_l1.is_finite()) {
                return false;
            }
            inv_scales.push(1.0 / scale);
            l1.push(row_l1);
        }
        self.vectors_i8 = Some(BucketI8 {
            codes,
            inv_scales,
            l1,
        });
        true
    }
}

/// Sorts items by norm (descending, ties toward smaller id) and partitions
/// them into buckets of `bucket_size` (the final bucket may be smaller).
///
/// `checkpoint` is the INCR coordinate split point, in `[1, f]`.
///
/// # Panics
/// Panics if `items` is empty, `bucket_size == 0`, or the checkpoint is out
/// of range.
pub fn build_buckets(items: &Matrix<f64>, bucket_size: usize, checkpoint: usize) -> Vec<Bucket> {
    assert!(items.rows() > 0, "build_buckets: no items");
    assert!(bucket_size > 0, "build_buckets: bucket_size must be > 0");
    let f = items.cols();
    assert!(
        checkpoint >= 1 && checkpoint <= f,
        "build_buckets: checkpoint {checkpoint} out of range [1, {f}]"
    );

    let mut order: Vec<(f64, u32)> = items
        .iter_rows()
        .enumerate()
        .map(|(i, row)| (norm2(row), i as u32))
        .collect();
    // `total_cmp` instead of `partial_cmp(..).expect(..)`: norms are
    // non-negative and validated finite upstream, but a serving-path sort
    // must never be able to panic on a stray NaN.
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    order
        .chunks(bucket_size)
        .map(|chunk| {
            let n = chunk.len();
            let mut ids = Vec::with_capacity(n);
            let mut vectors = Matrix::<f64>::zeros(n, f);
            let mut dirs = Matrix::<f64>::zeros(n, f);
            let mut norms = Vec::with_capacity(n);
            let mut dir_suffix_at_cp = Vec::with_capacity(n);
            for (r, &(norm, id)) in chunk.iter().enumerate() {
                ids.push(id);
                norms.push(norm);
                let src = items.row(id as usize);
                vectors.row_mut(r).copy_from_slice(src);
                let drow = dirs.row_mut(r);
                if norm > 0.0 {
                    let inv = 1.0 / norm;
                    for (d, &v) in drow.iter_mut().zip(src) {
                        *d = v * inv;
                    }
                }
                let sfx = suffix_norms(dirs.row(r));
                dir_suffix_at_cp.push(sfx[checkpoint]);
            }
            let max_norm = norms[0];
            Bucket {
                ids,
                vectors,
                dirs,
                norms,
                dir_suffix_at_cp,
                max_norm,
                vectors32: None,
                vectors_i8: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Matrix<f64> {
        Matrix::from_rows(&[
            vec![3.0, 4.0], // norm 5
            vec![1.0, 0.0], // norm 1
            vec![0.0, 2.0], // norm 2
            vec![6.0, 8.0], // norm 10
            vec![0.0, 0.0], // norm 0
        ])
        .unwrap()
    }

    #[test]
    fn buckets_sorted_descending_by_norm() {
        let buckets = build_buckets(&items(), 2, 1);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].ids, vec![3, 0]);
        assert_eq!(buckets[1].ids, vec![2, 1]);
        assert_eq!(buckets[2].ids, vec![4]);
        assert_eq!(buckets[0].max_norm, 10.0);
        assert_eq!(buckets[1].max_norm, 2.0);
        // Norms within each bucket descend.
        for b in &buckets {
            for w in b.norms.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    #[test]
    fn directions_are_unit_or_zero() {
        let buckets = build_buckets(&items(), 10, 2);
        let b = &buckets[0];
        for r in 0..b.len() {
            let n = norm2(b.dirs.row(r));
            if b.norms[r] > 0.0 {
                assert!((n - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(n, 0.0);
            }
        }
    }

    #[test]
    fn vectors_preserve_originals() {
        let m = items();
        let buckets = build_buckets(&m, 3, 1);
        for b in &buckets {
            for (r, &id) in b.ids.iter().enumerate() {
                assert_eq!(b.vectors.row(r), m.row(id as usize));
            }
        }
    }

    #[test]
    fn suffix_norms_match_direct() {
        let m = items();
        let cp = 1;
        let buckets = build_buckets(&m, 10, cp);
        let b = &buckets[0];
        for r in 0..b.len() {
            let direct = norm2(&b.dirs.row(r)[cp..]);
            assert!((b.dir_suffix_at_cp[r] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn screen_mirror_rounds_every_vector_entry() {
        let mut buckets = build_buckets(&items(), 2, 1);
        assert!(buckets.iter().all(|b| b.vectors32.is_none()));
        for b in &mut buckets {
            b.build_screen_mirror();
            let v32 = b.vectors32.as_ref().unwrap();
            assert_eq!(
                (v32.rows(), v32.cols()),
                (b.vectors.rows(), b.vectors.cols())
            );
            for r in 0..b.len() {
                for c in 0..v32.cols() {
                    assert_eq!(v32.get(r, c), b.vectors.get(r, c) as f32);
                }
            }
        }
    }

    #[test]
    fn i8_mirror_quantizes_every_row_with_the_shared_policy() {
        let mut buckets = build_buckets(&items(), 3, 1);
        for b in &mut buckets {
            assert!(b.build_screen_mirror_i8());
            assert!(b.build_screen_mirror_i8(), "not idempotent");
            let q = b.vectors_i8.as_ref().unwrap();
            assert_eq!(q.codes.len(), b.len() * b.vectors.cols());
            for r in 0..b.len() {
                let row = b.vectors.row(r);
                let max_abs = row.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
                let scale = mips_linalg::scale_for(max_abs, mips_linalg::I8_QUANT_LEVEL);
                assert!(
                    (q.inv_scales[r] - 1.0 / scale).abs() <= f64::EPSILON * q.inv_scales[r].abs()
                );
                let f = b.vectors.cols();
                for (c, &v) in row.iter().enumerate() {
                    let want = (v * scale).round().clamp(-127.0, 127.0) as i8;
                    assert_eq!(q.codes[r * f + c], want, "row {r} col {c}");
                }
                let l1: f64 = row.iter().map(|v| v.abs()).sum();
                assert_eq!(q.l1[r], l1);
            }
        }
    }

    #[test]
    fn i8_mirror_refuses_subnormal_rows() {
        let m = Matrix::from_rows(&[vec![1.0e-320, 0.0], vec![1.0, 2.0]]).unwrap();
        let mut buckets = build_buckets(&m, 10, 1);
        assert!(!buckets[0].build_screen_mirror_i8());
        assert!(buckets[0].vectors_i8.is_none());
    }

    #[test]
    fn norm_ties_break_by_id() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0], vec![-1.0, 0.0]]).unwrap();
        let buckets = build_buckets(&m, 3, 1);
        assert_eq!(buckets[0].ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "checkpoint")]
    fn rejects_out_of_range_checkpoint() {
        let _ = build_buckets(&items(), 2, 3);
    }

    #[test]
    #[should_panic(expected = "no items")]
    fn rejects_empty_items() {
        let empty = Matrix::<f64>::zeros(0, 2);
        let _ = build_buckets(&empty, 2, 1);
    }
}
