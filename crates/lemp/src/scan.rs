//! Per-bucket retrieval algorithms: NAIVE, LENGTH, and INCR.
//!
//! All three produce identical results; they differ in how much work they
//! spend deciding that an item cannot beat the current threshold. Bounds are
//! inflated by a relative epsilon before comparison so floating-point
//! rounding can never prune a true top-k item (exactness first, then speed).
//!
//! Every full and partial inner product here (`dot` over the bucket rows,
//! INCR's leading-coordinate partial products, the suffix-norm tables built
//! through [`suffix_norms`]) runs on the runtime-dispatched SIMD kernels of
//! [`mips_linalg::simd`] — the scans get AVX2/NEON FMA throughput without
//! any per-call-site change. The suffix scan's block re-association (the one
//! kernel that is not bit-identical to scalar) is absorbed by [`BOUND_EPS`],
//! which dominates the proved re-association bound
//! ([`mips_linalg::sumsq_reassoc_bound`]) by orders of magnitude.
//!
//! When the index carries f32 mirrors, a **mixed-precision screen** runs
//! just before each verification dot: the item is scored through the
//! single-precision kernels, the score widened by the
//! [`mips_linalg::f32_screen_envelope`] error bound, and the exact dot is
//! skipped when even the widened score cannot reach the heap threshold —
//! the skipped push was guaranteed to be rejected, so results stay
//! bit-identical to the pure double-precision scan.
//!
//! The **int8 screen** is the tier below: items carry symmetric int8 codes
//! ([`crate::bucket::BucketI8`]), the pre-score is an exact integer dot
//! reconstructed through the per-row scales, and the widening envelope is
//! [`mips_linalg::i8_screen_envelope_parts`] — the same skip-only-when-
//! hopeless discipline, an eighth of the scan bandwidth.

use crate::bucket::Bucket;
use mips_linalg::kernels::{dot, f32_screen_envelope_parts, norm2, suffix_norms};
use mips_linalg::{dot_i8, i8_screen_envelope_parts, quantize_row_i8};
use mips_topk::TopKHeap;

/// Relative inflation applied to every pruning bound.
///
/// Two rounding sources must stay underneath it, and both are covered by
/// *proved* bounds, not just margin:
///
/// * accumulating an `f`-term double-precision dot in any association
///   order shifts it by at most `γ_f ≈ f·2⁻⁵³` relative to the operand
///   magnitudes (Higham ch. 3) — `≤ 5.7·10⁻¹⁴` for `f = 512`;
/// * the suffix-norm tables are built by [`suffix_norms`], whose blocked
///   SIMD re-association is bounded by
///   [`mips_linalg::sumsq_reassoc_bound`] — `≤ 2.3·10⁻¹³` at `n = 1024`.
///
/// `BOUND_EPS = 10⁻¹⁰` dominates both with more than two orders of
/// magnitude to spare for every feasible factor count; the
/// `bound_eps_dominates_proved_rounding_bounds` test pins the margin.
pub const BOUND_EPS: f64 = 1e-10;

/// Inflates an upper bound so rounding cannot make it under-estimate.
#[inline(always)]
pub fn inflate(bound: f64) -> f64 {
    bound + bound.abs() * BOUND_EPS
}

/// The retrieval algorithms LEMP chooses among per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalAlgo {
    /// Full inner product for every item in the bucket.
    Naive,
    /// Norm-bound scanning: stop at the first item with
    /// `‖u‖·‖i‖ < threshold` (items are norm-sorted).
    Length,
    /// LENGTH plus partial inner products over the first `cp` coordinates
    /// with a Cauchy–Schwarz bound on the suffix.
    Incr,
}

/// Per-user state of the mixed-precision screen (consumed by the scan
/// kernels' verify-and-push step).
#[derive(Debug, Clone)]
pub struct ScreenCtx {
    /// Rounded single-precision copy of the user vector.
    pub user32: Vec<f32>,
    /// `rel · ‖u‖` where `(rel, abs) = f32_screen_envelope_parts(f)`: the
    /// per-item screen envelope is `env_rel_u · ‖i‖ + env_abs`.
    pub env_rel_u: f64,
    /// The envelope's absolute term.
    pub env_abs: f64,
}

/// Per-user state of the int8 screen (consumed by the scan kernels'
/// verify-and-push step, preferred over [`ScreenCtx`] when both are armed).
#[derive(Debug, Clone)]
pub struct ScreenCtxI8 {
    /// Symmetric int8 codes of the user vector.
    pub codes: Vec<i8>,
    /// `1 / s_u` (reconstruction multiplier).
    pub inv_su: f64,
    /// The envelope's scale-proportional term `a` of
    /// [`i8_screen_envelope_parts`]: the per-item envelope is
    /// `env_a · (1/s_i) + env_b · ‖i‖₁`.
    pub env_a: f64,
    /// The envelope's L1-proportional term `b`.
    pub env_b: f64,
}

/// Per-user query state shared across buckets.
#[derive(Debug, Clone)]
pub struct UserCtx {
    /// The original user vector.
    pub user: Vec<f64>,
    /// `‖u‖`.
    pub norm: f64,
    /// `u / ‖u‖` (zeros stay zero).
    pub unit: Vec<f64>,
    /// `‖û[cp..]‖` — the user-side Cauchy–Schwarz suffix factor.
    pub unit_suffix_at_cp: f64,
    /// The INCR checkpoint used to compute `unit_suffix_at_cp`.
    pub checkpoint: usize,
    /// f32 screen state, present only via [`UserCtx::with_screen`].
    pub screen: Option<ScreenCtx>,
    /// int8 screen state, present only via [`UserCtx::with_screen_i8`]
    /// (and only when the user row quantizes finitely).
    pub screen_i8: Option<ScreenCtxI8>,
}

impl UserCtx {
    /// Prepares per-user state for a query.
    ///
    /// # Panics
    /// Panics if the checkpoint exceeds the dimensionality.
    pub fn new(user: &[f64], checkpoint: usize) -> UserCtx {
        assert!(
            checkpoint >= 1 && checkpoint <= user.len(),
            "UserCtx: checkpoint {checkpoint} out of range"
        );
        let norm = norm2(user);
        let unit: Vec<f64> = if norm > 0.0 {
            user.iter().map(|&v| v / norm).collect()
        } else {
            vec![0.0; user.len()]
        };
        let unit_suffix_at_cp = suffix_norms(&unit)[checkpoint];
        UserCtx {
            user: user.to_vec(),
            norm,
            unit,
            unit_suffix_at_cp,
            checkpoint,
            screen: None,
            screen_i8: None,
        }
    }

    /// Arms the mixed-precision screen: rounds the user vector to f32 and
    /// precomputes the [`mips_linalg::f32_screen_envelope`] coefficients.
    /// Only buckets that carry an f32 mirror
    /// ([`Bucket::build_screen_mirror`]) actually screen.
    pub fn with_screen(mut self) -> UserCtx {
        let (rel, abs) = f32_screen_envelope_parts(self.user.len());
        self.screen = Some(ScreenCtx {
            user32: self.user.iter().map(|&v| v as f32).collect(),
            env_rel_u: rel * self.norm,
            env_abs: abs,
        });
        self
    }

    /// Arms the int8 screen: quantizes the user vector to symmetric int8
    /// codes and precomputes the [`i8_screen_envelope_parts`] coefficients.
    /// A user row whose quantization degenerates (non-finite scale or L1)
    /// scans unscreened — still exact, just unaccelerated. Only buckets
    /// that carry an int8 mirror ([`Bucket::build_screen_mirror_i8`])
    /// actually screen.
    pub fn with_screen_i8(mut self) -> UserCtx {
        let mut codes = vec![0i8; self.user.len()];
        let (su, ul1) = quantize_row_i8(&self.user, &mut codes);
        if su.is_finite() && ul1.is_finite() {
            let (env_a, env_b) = i8_screen_envelope_parts(self.user.len(), su, ul1);
            self.screen_i8 = Some(ScreenCtxI8 {
                codes,
                inv_su: 1.0 / su,
                env_a,
                env_b,
            });
        }
        self
    }
}

/// Work counters accumulated during a scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Items whose full inner product was computed.
    pub dots_computed: u64,
    /// Items skipped by the LENGTH norm bound (including break-offs).
    pub length_pruned: u64,
    /// Items skipped by the INCR partial-product bound.
    pub incr_pruned: u64,
    /// Items the mixed-precision screen evaluated (f32 or int8): every
    /// screen pre-score computed, whether it pruned or not.
    /// `screen_evaluated - screen_pruned` survivors went on to the exact
    /// verification dot.
    pub screen_evaluated: u64,
    /// Items whose exact verification dot (and guaranteed-rejected heap
    /// push) was skipped by the mixed-precision screen (f32 or int8).
    pub screen_pruned: u64,
}

impl ScanStats {
    /// Component-wise accumulation.
    pub fn add(&mut self, other: &ScanStats) {
        self.dots_computed += other.dots_computed;
        self.length_pruned += other.length_pruned;
        self.incr_pruned += other.incr_pruned;
        self.screen_evaluated += other.screen_evaluated;
        self.screen_pruned += other.screen_pruned;
    }
}

/// Scans one bucket with the given algorithm, updating the heap in place.
pub fn scan_bucket(
    algo: RetrievalAlgo,
    bucket: &Bucket,
    ctx: &UserCtx,
    heap: &mut TopKHeap,
    stats: &mut ScanStats,
) {
    match algo {
        RetrievalAlgo::Naive => scan_naive(bucket, ctx, heap, stats),
        RetrievalAlgo::Length => scan_length(bucket, ctx, heap, stats),
        RetrievalAlgo::Incr => scan_incr(bucket, ctx, heap, stats),
    }
}

/// The exact verification dot and push, gated by the mixed-precision
/// screen when both sides carry f32 mirrors ([`UserCtx::with_screen`],
/// [`Bucket::build_screen_mirror`]).
///
/// The screen scores the item through the dispatched single-precision
/// kernel and widens the result by the
/// [`mips_linalg::f32_screen_envelope`] error bound. When even the widened
/// score sits strictly below the heap threshold, the exact score does too,
/// so its push would have been rejected — skipping the f64 dot *and* the
/// push leaves the heap trajectory, and therefore the results, bit-
/// identical to the pure double-precision scan. A non-finite screen score
/// (an operand overflowed the f32 range while rounding) never prunes.
#[inline]
fn verify_and_push(
    bucket: &Bucket,
    ctx: &UserCtx,
    r: usize,
    id: u32,
    heap: &mut TopKHeap,
    stats: &mut ScanStats,
) {
    if heap.is_full() {
        // The int8 tier takes precedence when both screens are armed: same
        // skip-only-when-hopeless discipline, an eighth of the bandwidth.
        // The integer estimate is always finite by construction.
        if let (Some(sc), Some(qi)) = (&ctx.screen_i8, bucket.vectors_i8.as_ref()) {
            let f = sc.codes.len();
            let d = dot_i8(&sc.codes, &qi.codes[r * f..(r + 1) * f]);
            let inv_si = qi.inv_scales[r];
            let est = d as f64 * (sc.inv_su * inv_si);
            let env = sc.env_a * inv_si + sc.env_b * qi.l1[r];
            stats.screen_evaluated += 1;
            if est + env < heap.threshold() {
                stats.screen_pruned += 1;
                return;
            }
        } else if let (Some(sc), Some(v32)) = (&ctx.screen, bucket.vectors32.as_ref()) {
            let s32 = dot(&sc.user32, v32.row(r)) as f64;
            let env = sc.env_rel_u.mul_add(bucket.norms[r], sc.env_abs);
            stats.screen_evaluated += 1;
            if s32.is_finite() && s32 + env < heap.threshold() {
                stats.screen_pruned += 1;
                return;
            }
        }
    }
    heap.push(dot(&ctx.user, bucket.vectors.row(r)), id);
    stats.dots_computed += 1;
}

fn scan_naive(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    for (r, &id) in bucket.ids.iter().enumerate() {
        verify_and_push(bucket, ctx, r, id, heap, stats);
    }
}

fn scan_length(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    for (r, &id) in bucket.ids.iter().enumerate() {
        // Items are norm-sorted: once the Cauchy–Schwarz ceiling drops below
        // the threshold, no later item in this bucket can qualify either.
        if heap.is_full() && inflate(ctx.norm * bucket.norms[r]) < heap.threshold() {
            stats.length_pruned += (bucket.len() - r) as u64;
            return;
        }
        verify_and_push(bucket, ctx, r, id, heap, stats);
    }
}

fn scan_incr(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    let cp = ctx.checkpoint;
    for (r, &id) in bucket.ids.iter().enumerate() {
        let scale = ctx.norm * bucket.norms[r];
        if heap.is_full() && inflate(scale) < heap.threshold() {
            stats.length_pruned += (bucket.len() - r) as u64;
            return;
        }
        if heap.is_full() {
            // Partial cosine over the leading coordinates, Cauchy–Schwarz on
            // the rest: cos(û, d̂) ≤ û[..cp]·d̂[..cp] + ‖û[cp..]‖‖d̂[cp..]‖.
            // The rounding slack must be relative to the *scale of the
            // terms* (≤ 1 for cosines), not to the bound itself — partial
            // and suffix terms can cancel to a bound near zero while each
            // carries ~ulp(1) of error.
            let partial = dot(&ctx.unit[..cp], &bucket.dirs.row(r)[..cp]);
            let cos_bound = (partial + ctx.unit_suffix_at_cp * bucket.dir_suffix_at_cp[r]).min(1.0);
            if scale * (cos_bound + BOUND_EPS) < heap.threshold() {
                stats.incr_pruned += 1;
                continue;
            }
        }
        verify_and_push(bucket, ctx, r, id, heap, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::build_buckets;
    use mips_linalg::Matrix;

    fn random_items(n: usize, f: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(n, f, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn reference_topk(items: &Matrix<f64>, user: &[f64], k: usize) -> Vec<u32> {
        let mut heap = TopKHeap::new(k);
        for r in 0..items.rows() {
            heap.push(dot(user, items.row(r)), r as u32);
        }
        heap.into_sorted().items
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Tier {
        F64,
        F32,
        I8,
    }

    fn run_algo(
        algo: RetrievalAlgo,
        items: &Matrix<f64>,
        user: &[f64],
        k: usize,
    ) -> (Vec<u32>, ScanStats) {
        let (list, stats) = run_algo_screened(algo, items, user, k, Tier::F64);
        (list.items, stats)
    }

    fn run_algo_screened(
        algo: RetrievalAlgo,
        items: &Matrix<f64>,
        user: &[f64],
        k: usize,
        tier: Tier,
    ) -> (mips_topk::TopKList, ScanStats) {
        let cp = (items.cols() / 4).max(1);
        let mut buckets = build_buckets(items, 16, cp);
        let mut ctx = UserCtx::new(user, cp);
        match tier {
            Tier::F64 => {}
            Tier::F32 => {
                for b in &mut buckets {
                    b.build_screen_mirror();
                }
                ctx = ctx.with_screen();
            }
            Tier::I8 => {
                for b in &mut buckets {
                    assert!(b.build_screen_mirror_i8());
                }
                ctx = ctx.with_screen_i8();
            }
        }
        let mut heap = TopKHeap::new(k);
        let mut stats = ScanStats::default();
        for b in &buckets {
            if heap.is_full() && inflate(ctx.norm * b.max_norm) < heap.threshold() {
                break;
            }
            scan_bucket(algo, b, &ctx, &mut heap, &mut stats);
        }
        (heap.into_sorted(), stats)
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let items = random_items(120, 12, 5);
        let users = random_items(8, 12, 99);
        for k in [1usize, 3, 10] {
            for u in 0..users.rows() {
                let user = users.row(u);
                let want = reference_topk(&items, user, k);
                for algo in [
                    RetrievalAlgo::Naive,
                    RetrievalAlgo::Length,
                    RetrievalAlgo::Incr,
                ] {
                    let (got, _) = run_algo(algo, &items, user, k);
                    assert_eq!(got, want, "algo {algo:?} k={k} user {u}");
                }
            }
        }
    }

    #[test]
    fn pruning_algorithms_do_less_work_on_skewed_norms() {
        // Strong norm skew: a few giant items dominate every top-k. The
        // brute-force cost is |users|·|items| dots; LEMP's bucket bound plus
        // per-item pruning should eliminate the bulk of them.
        let mut items = random_items(200, 8, 3);
        for r in 0..items.rows() {
            let boost = if r < 5 { 50.0 } else { 0.1 };
            for v in items.row_mut(r) {
                *v *= boost;
            }
        }
        let users = random_items(4, 8, 17);
        let brute_force_dots = (items.rows() * users.rows()) as u64;
        let mut length_dots = 0;
        let mut incr_dots = 0;
        for u in 0..users.rows() {
            let (_, s) = run_algo(RetrievalAlgo::Length, &items, users.row(u), 3);
            length_dots += s.dots_computed;
            let (_, s) = run_algo(RetrievalAlgo::Incr, &items, users.row(u), 3);
            incr_dots += s.dots_computed;
        }
        assert!(
            length_dots < brute_force_dots / 2,
            "{length_dots} vs brute force {brute_force_dots}"
        );
        // INCR's extra partial-product filter can only reduce full dots.
        assert!(incr_dots <= length_dots, "{incr_dots} vs {length_dots}");
    }

    #[test]
    fn zero_norm_user_is_handled() {
        let items = random_items(30, 6, 8);
        let zero = vec![0.0; 6];
        let want = reference_topk(&items, &zero, 5);
        for algo in [
            RetrievalAlgo::Naive,
            RetrievalAlgo::Length,
            RetrievalAlgo::Incr,
        ] {
            let (got, _) = run_algo(algo, &items, &zero, 5);
            assert_eq!(got, want, "algo {algo:?}");
        }
    }

    #[test]
    fn negative_thresholds_do_not_prune_wrongly() {
        // All ratings negative: bounds (≥ 0) never beat the threshold test.
        let items = random_items(40, 4, 2);
        let mut user = vec![0.0; 4];
        // A user anti-aligned with everything: flip sign of a random item.
        for (j, v) in user.iter_mut().enumerate() {
            *v = -items.get(0, j) * 3.0;
        }
        let want = reference_topk(&items, &user, 4);
        for algo in [RetrievalAlgo::Length, RetrievalAlgo::Incr] {
            let (got, _) = run_algo(algo, &items, &user, 4);
            assert_eq!(got, want, "algo {algo:?}");
        }
    }

    #[test]
    fn screened_scans_are_bit_identical_and_prune() {
        let items = random_items(300, 24, 11);
        let users = random_items(6, 24, 42);
        let mut pruned_f32 = 0;
        let mut pruned_i8 = 0;
        for u in 0..users.rows() {
            let user = users.row(u);
            for k in [1usize, 4, 9] {
                for algo in [
                    RetrievalAlgo::Naive,
                    RetrievalAlgo::Length,
                    RetrievalAlgo::Incr,
                ] {
                    let (want, _) = run_algo_screened(algo, &items, user, k, Tier::F64);
                    for tier in [Tier::F32, Tier::I8] {
                        let (got, stats) = run_algo_screened(algo, &items, user, k, tier);
                        assert_eq!(got.items, want.items, "algo {algo:?} k={k} user {u}");
                        for (a, b) in got.scores.iter().zip(&want.scores) {
                            assert_eq!(a.to_bits(), b.to_bits(), "algo {algo:?} k={k} user {u}");
                        }
                        match tier {
                            Tier::F32 => pruned_f32 += stats.screen_pruned,
                            _ => pruned_i8 += stats.screen_pruned,
                        }
                    }
                }
            }
        }
        // Random dense scores leave most items far from the top-k
        // threshold: the screens must actually be saving exact dots.
        assert!(pruned_f32 > 0, "f32 screen never pruned anything");
        assert!(pruned_i8 > 0, "i8 screen never pruned anything");
    }

    #[test]
    fn screen_without_bucket_mirror_degrades_to_plain_scan() {
        // A screened UserCtx against mirror-less buckets must not change
        // behavior (the screen needs both sides).
        let items = random_items(80, 8, 3);
        let buckets = build_buckets(&items, 16, 2);
        let ctx = UserCtx::new(items.row(0), 2).with_screen();
        let mut heap = TopKHeap::new(5);
        let mut stats = ScanStats::default();
        for b in &buckets {
            scan_bucket(RetrievalAlgo::Naive, b, &ctx, &mut heap, &mut stats);
        }
        assert_eq!(stats.screen_pruned, 0);
        assert_eq!(stats.dots_computed, 80);
    }

    #[test]
    fn i8_screen_without_bucket_mirror_degrades_to_plain_scan() {
        let items = random_items(80, 8, 3);
        let buckets = build_buckets(&items, 16, 2);
        let ctx = UserCtx::new(items.row(0), 2).with_screen_i8();
        assert!(ctx.screen_i8.is_some());
        let mut heap = TopKHeap::new(5);
        let mut stats = ScanStats::default();
        for b in &buckets {
            scan_bucket(RetrievalAlgo::Naive, b, &ctx, &mut heap, &mut stats);
        }
        assert_eq!(stats.screen_pruned, 0);
        assert_eq!(stats.dots_computed, 80);
    }

    #[test]
    fn degenerate_user_rows_scan_unscreened_but_exact() {
        // A subnormal user row quantizes to a non-finite scale: with_screen_i8
        // must leave the screen unarmed rather than prune wrongly.
        let items = random_items(60, 6, 9);
        let user = vec![1.0e-320; 6];
        let ctx = UserCtx::new(&user, 2).with_screen_i8();
        assert!(ctx.screen_i8.is_none());
        let (got, stats) = run_algo_screened(RetrievalAlgo::Naive, &items, &user, 5, Tier::I8);
        let (want, _) = run_algo_screened(RetrievalAlgo::Naive, &items, &user, 5, Tier::F64);
        assert_eq!(got.items, want.items);
        assert_eq!(stats.screen_pruned, 0);
    }

    #[test]
    fn bound_eps_dominates_proved_rounding_bounds() {
        // Satellite of the mixed-precision PR: the BOUND_EPS slack is not
        // an ad-hoc epsilon — it must dominate the *proved* rounding
        // bounds it absorbs, with two orders of magnitude of margin.
        // (a) any-order f64 dot accumulation: γ_f = (f·ε/2)/(1 − f·ε/2);
        // (b) the suffix-norm kernel's blocked re-association.
        for f in [8usize, 64, 512, 1024] {
            let eps = f64::EPSILON;
            let gamma = (f as f64 * eps / 2.0) / (1.0 - f as f64 * eps / 2.0);
            assert!(
                100.0 * gamma <= BOUND_EPS,
                "γ_{f} = {gamma} too close to BOUND_EPS"
            );
            let reassoc = mips_linalg::sumsq_reassoc_bound(f);
            assert!(
                100.0 * reassoc <= BOUND_EPS,
                "sumsq_reassoc_bound({f}) = {reassoc} too close to BOUND_EPS"
            );
        }
    }

    #[test]
    fn inflate_is_an_upper_bound_transform() {
        assert!(inflate(1.0) > 1.0);
        assert!(inflate(-1.0) > -1.0);
        assert_eq!(inflate(0.0), 0.0);
    }

    #[test]
    fn user_ctx_normalizes() {
        let ctx = UserCtx::new(&[3.0, 0.0, 0.0, 4.0], 2);
        assert!((ctx.norm - 5.0).abs() < 1e-12);
        assert!((ctx.unit[0] - 0.6).abs() < 1e-12);
        // Suffix after 2 coords: ‖(0, 0.8)‖ = 0.8.
        assert!((ctx.unit_suffix_at_cp - 0.8).abs() < 1e-12);
    }
}
