//! Per-bucket retrieval algorithms: NAIVE, LENGTH, and INCR.
//!
//! All three produce identical results; they differ in how much work they
//! spend deciding that an item cannot beat the current threshold. Bounds are
//! inflated by a relative epsilon before comparison so floating-point
//! rounding can never prune a true top-k item (exactness first, then speed).
//!
//! Every full and partial inner product here (`dot` over the bucket rows,
//! INCR's leading-coordinate partial products, the suffix-norm tables built
//! through [`suffix_norms`]) runs on the runtime-dispatched SIMD kernels of
//! [`mips_linalg::simd`] — the scans get AVX2/NEON FMA throughput without
//! any per-call-site change. The suffix scan's block re-association (the one
//! kernel that is not bit-identical to scalar) is absorbed by [`BOUND_EPS`],
//! which inflates every bound comparison by several orders of magnitude more
//! than the reordering can shift it.

use crate::bucket::Bucket;
use mips_linalg::kernels::{dot, norm2, suffix_norms};
use mips_topk::TopKHeap;

/// Relative inflation applied to every pruning bound. Covers the worst-case
/// rounding of `f ≤ 512` double-precision accumulations with two orders of
/// magnitude to spare.
pub const BOUND_EPS: f64 = 1e-10;

/// Inflates an upper bound so rounding cannot make it under-estimate.
#[inline(always)]
pub fn inflate(bound: f64) -> f64 {
    bound + bound.abs() * BOUND_EPS
}

/// The retrieval algorithms LEMP chooses among per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalAlgo {
    /// Full inner product for every item in the bucket.
    Naive,
    /// Norm-bound scanning: stop at the first item with
    /// `‖u‖·‖i‖ < threshold` (items are norm-sorted).
    Length,
    /// LENGTH plus partial inner products over the first `cp` coordinates
    /// with a Cauchy–Schwarz bound on the suffix.
    Incr,
}

/// Per-user query state shared across buckets.
#[derive(Debug, Clone)]
pub struct UserCtx {
    /// The original user vector.
    pub user: Vec<f64>,
    /// `‖u‖`.
    pub norm: f64,
    /// `u / ‖u‖` (zeros stay zero).
    pub unit: Vec<f64>,
    /// `‖û[cp..]‖` — the user-side Cauchy–Schwarz suffix factor.
    pub unit_suffix_at_cp: f64,
    /// The INCR checkpoint used to compute `unit_suffix_at_cp`.
    pub checkpoint: usize,
}

impl UserCtx {
    /// Prepares per-user state for a query.
    ///
    /// # Panics
    /// Panics if the checkpoint exceeds the dimensionality.
    pub fn new(user: &[f64], checkpoint: usize) -> UserCtx {
        assert!(
            checkpoint >= 1 && checkpoint <= user.len(),
            "UserCtx: checkpoint {checkpoint} out of range"
        );
        let norm = norm2(user);
        let unit: Vec<f64> = if norm > 0.0 {
            user.iter().map(|&v| v / norm).collect()
        } else {
            vec![0.0; user.len()]
        };
        let unit_suffix_at_cp = suffix_norms(&unit)[checkpoint];
        UserCtx {
            user: user.to_vec(),
            norm,
            unit,
            unit_suffix_at_cp,
            checkpoint,
        }
    }
}

/// Work counters accumulated during a scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Items whose full inner product was computed.
    pub dots_computed: u64,
    /// Items skipped by the LENGTH norm bound (including break-offs).
    pub length_pruned: u64,
    /// Items skipped by the INCR partial-product bound.
    pub incr_pruned: u64,
}

impl ScanStats {
    /// Component-wise accumulation.
    pub fn add(&mut self, other: &ScanStats) {
        self.dots_computed += other.dots_computed;
        self.length_pruned += other.length_pruned;
        self.incr_pruned += other.incr_pruned;
    }
}

/// Scans one bucket with the given algorithm, updating the heap in place.
pub fn scan_bucket(
    algo: RetrievalAlgo,
    bucket: &Bucket,
    ctx: &UserCtx,
    heap: &mut TopKHeap,
    stats: &mut ScanStats,
) {
    match algo {
        RetrievalAlgo::Naive => scan_naive(bucket, ctx, heap, stats),
        RetrievalAlgo::Length => scan_length(bucket, ctx, heap, stats),
        RetrievalAlgo::Incr => scan_incr(bucket, ctx, heap, stats),
    }
}

fn scan_naive(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    for (r, &id) in bucket.ids.iter().enumerate() {
        let score = dot(&ctx.user, bucket.vectors.row(r));
        heap.push(score, id);
        stats.dots_computed += 1;
    }
}

fn scan_length(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    for (r, &id) in bucket.ids.iter().enumerate() {
        // Items are norm-sorted: once the Cauchy–Schwarz ceiling drops below
        // the threshold, no later item in this bucket can qualify either.
        if heap.is_full() && inflate(ctx.norm * bucket.norms[r]) < heap.threshold() {
            stats.length_pruned += (bucket.len() - r) as u64;
            return;
        }
        let score = dot(&ctx.user, bucket.vectors.row(r));
        heap.push(score, id);
        stats.dots_computed += 1;
    }
}

fn scan_incr(bucket: &Bucket, ctx: &UserCtx, heap: &mut TopKHeap, stats: &mut ScanStats) {
    let cp = ctx.checkpoint;
    for (r, &id) in bucket.ids.iter().enumerate() {
        let scale = ctx.norm * bucket.norms[r];
        if heap.is_full() && inflate(scale) < heap.threshold() {
            stats.length_pruned += (bucket.len() - r) as u64;
            return;
        }
        if heap.is_full() {
            // Partial cosine over the leading coordinates, Cauchy–Schwarz on
            // the rest: cos(û, d̂) ≤ û[..cp]·d̂[..cp] + ‖û[cp..]‖‖d̂[cp..]‖.
            // The rounding slack must be relative to the *scale of the
            // terms* (≤ 1 for cosines), not to the bound itself — partial
            // and suffix terms can cancel to a bound near zero while each
            // carries ~ulp(1) of error.
            let partial = dot(&ctx.unit[..cp], &bucket.dirs.row(r)[..cp]);
            let cos_bound = (partial + ctx.unit_suffix_at_cp * bucket.dir_suffix_at_cp[r]).min(1.0);
            if scale * (cos_bound + BOUND_EPS) < heap.threshold() {
                stats.incr_pruned += 1;
                continue;
            }
        }
        let score = dot(&ctx.user, bucket.vectors.row(r));
        heap.push(score, id);
        stats.dots_computed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::build_buckets;
    use mips_linalg::Matrix;

    fn random_items(n: usize, f: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(n, f, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn reference_topk(items: &Matrix<f64>, user: &[f64], k: usize) -> Vec<u32> {
        let mut heap = TopKHeap::new(k);
        for r in 0..items.rows() {
            heap.push(dot(user, items.row(r)), r as u32);
        }
        heap.into_sorted().items
    }

    fn run_algo(
        algo: RetrievalAlgo,
        items: &Matrix<f64>,
        user: &[f64],
        k: usize,
    ) -> (Vec<u32>, ScanStats) {
        let cp = (items.cols() / 4).max(1);
        let buckets = build_buckets(items, 16, cp);
        let ctx = UserCtx::new(user, cp);
        let mut heap = TopKHeap::new(k);
        let mut stats = ScanStats::default();
        for b in &buckets {
            if heap.is_full() && inflate(ctx.norm * b.max_norm) < heap.threshold() {
                break;
            }
            scan_bucket(algo, b, &ctx, &mut heap, &mut stats);
        }
        (heap.into_sorted().items, stats)
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let items = random_items(120, 12, 5);
        let users = random_items(8, 12, 99);
        for k in [1usize, 3, 10] {
            for u in 0..users.rows() {
                let user = users.row(u);
                let want = reference_topk(&items, user, k);
                for algo in [
                    RetrievalAlgo::Naive,
                    RetrievalAlgo::Length,
                    RetrievalAlgo::Incr,
                ] {
                    let (got, _) = run_algo(algo, &items, user, k);
                    assert_eq!(got, want, "algo {algo:?} k={k} user {u}");
                }
            }
        }
    }

    #[test]
    fn pruning_algorithms_do_less_work_on_skewed_norms() {
        // Strong norm skew: a few giant items dominate every top-k. The
        // brute-force cost is |users|·|items| dots; LEMP's bucket bound plus
        // per-item pruning should eliminate the bulk of them.
        let mut items = random_items(200, 8, 3);
        for r in 0..items.rows() {
            let boost = if r < 5 { 50.0 } else { 0.1 };
            for v in items.row_mut(r) {
                *v *= boost;
            }
        }
        let users = random_items(4, 8, 17);
        let brute_force_dots = (items.rows() * users.rows()) as u64;
        let mut length_dots = 0;
        let mut incr_dots = 0;
        for u in 0..users.rows() {
            let (_, s) = run_algo(RetrievalAlgo::Length, &items, users.row(u), 3);
            length_dots += s.dots_computed;
            let (_, s) = run_algo(RetrievalAlgo::Incr, &items, users.row(u), 3);
            incr_dots += s.dots_computed;
        }
        assert!(
            length_dots < brute_force_dots / 2,
            "{length_dots} vs brute force {brute_force_dots}"
        );
        // INCR's extra partial-product filter can only reduce full dots.
        assert!(incr_dots <= length_dots, "{incr_dots} vs {length_dots}");
    }

    #[test]
    fn zero_norm_user_is_handled() {
        let items = random_items(30, 6, 8);
        let zero = vec![0.0; 6];
        let want = reference_topk(&items, &zero, 5);
        for algo in [
            RetrievalAlgo::Naive,
            RetrievalAlgo::Length,
            RetrievalAlgo::Incr,
        ] {
            let (got, _) = run_algo(algo, &items, &zero, 5);
            assert_eq!(got, want, "algo {algo:?}");
        }
    }

    #[test]
    fn negative_thresholds_do_not_prune_wrongly() {
        // All ratings negative: bounds (≥ 0) never beat the threshold test.
        let items = random_items(40, 4, 2);
        let mut user = vec![0.0; 4];
        // A user anti-aligned with everything: flip sign of a random item.
        for (j, v) in user.iter_mut().enumerate() {
            *v = -items.get(0, j) * 3.0;
        }
        let want = reference_topk(&items, &user, 4);
        for algo in [RetrievalAlgo::Length, RetrievalAlgo::Incr] {
            let (got, _) = run_algo(algo, &items, &user, 4);
            assert_eq!(got, want, "algo {algo:?}");
        }
    }

    #[test]
    fn inflate_is_an_upper_bound_transform() {
        assert!(inflate(1.0) > 1.0);
        assert!(inflate(-1.0) > -1.0);
        assert_eq!(inflate(0.0), 0.0);
    }

    #[test]
    fn user_ctx_normalizes() {
        let ctx = UserCtx::new(&[3.0, 0.0, 0.0, 4.0], 2);
        assert!((ctx.norm - 5.0).abs() < 1e-12);
        assert!((ctx.unit[0] - 0.6).abs() < 1e-12);
        // Suffix after 2 coords: ‖(0, 0.8)‖ = 0.8.
        assert!((ctx.unit_suffix_at_cp - 0.8).abs() < 1e-12);
    }
}
